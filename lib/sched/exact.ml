(* Exact modulo scheduler (PR 10).

   A branch-and-bound / CDCL-lite search over the same model the
   heuristic engine schedules against: the MRT's per-cluster FU slots and
   shared bus pool, broadcast cross-cluster communications, L0 capacity
   and the 1C coherence discipline. The search enumerates, per
   instruction in SMS priority order, every (cluster, latency-option,
   cycle) choice whose cycle lies in the Rau window [EST, EST + II) of
   the partial schedule, backtracking with full undo (Mrt release ops) and
   backjumping to the deepest culprit when an instruction fails for pure
   dependence-window reasons. IIs are tried from a certified lower bound
   upward, so the first full placement that also passes the register
   pressure estimate is a provably minimal-II schedule — unless an
   earlier II exhausted its node budget, in which case the verdict
   honestly degrades to [Feasible_at].

   Model caveats, shared with the heuristic (documented in
   docs/architecture.md): cycles are enumerated inside the II-wide Rau
   window only, and the PSR coherence ablation is not supported. *)

open Flexl0_ir
module Config = Flexl0_arch.Config
module Hint = Flexl0_mem.Hint
module Interleaved_mem = Flexl0_mem.Interleaved

type verdict = Optimal | Feasible_at of int | Budget_exhausted

let verdict_to_string = function
  | Optimal -> "optimal"
  | Feasible_at ii -> Printf.sprintf "feasible-at-%d" ii
  | Budget_exhausted -> "budget-exhausted"

type t = {
  exact_schedule : Schedule.t option;
  exact_verdict : verdict;
  exact_lower : int;
  exact_nodes : int;
}

let default_budget = 400_000

(* ------------------------------------------------------------------ *)
(* Per-II search state                                                  *)

type st = {
  cfg : Config.t;
  scheme : Scheme.t;
  coherence : Engine.coherence_mode;
  ddg : Ddg.t;
  ii : int;
  mrt : Mrt.t;
  placed : Schedule.placement option array;
  depth_of : int array;  (* DFS depth at which a placed instr was committed *)
  mutable comms : Schedule.comm list;
  free_l0 : int array;
  candidate : bool array;  (* L0-candidate load *)
  home : int option array;  (* static home cluster (interleaved locality) *)
  coh_set : Memdep.set option array;  (* needs_coherence set of i, if any *)
  usage : int array;
  (* Tentative bus-slot claims within one plan_comms attempt, the same
     generation-stamp scheme the heuristic uses. *)
  slot_mark : int array;
  mutable slot_gen : int;
  mutable nodes : int;
  budget : int;
}

exception Budget

let selective st =
  match st.scheme with Scheme.L0 { selective } -> selective | _ -> true

let unbounded_l0 st =
  match st.cfg.l0.capacity with
  | Config.Unbounded -> true
  | Config.No_l0 | Config.Entries _ -> false

let distributed_remote_total (cfg : Config.t) =
  cfg.distributed.remote_latency + cfg.distributed.local_latency

(* Same stream-home computation as the heuristic (Engine.static_home). *)
let static_home (cfg : Config.t) (loop : Loop.t) (ins : Instr.t) =
  match ins.memref with
  | None -> None
  | Some r -> (
    match r.Memref.stride with
    | Memref.Unknown -> None
    | Memref.Const s -> (
      let byte_stride = s * r.Memref.elem_bytes in
      let period = Interleaved_mem.word_bytes * cfg.num_clusters in
      if byte_stride mod period <> 0 then None
      else
        match List.assoc_opt r.Memref.array_id (Loop.layout loop) with
        | None -> None
        | Some base ->
          Some
            (Interleaved_mem.home_of ~clusters:cfg.num_clusters
               (base + (r.Memref.offset * r.Memref.elem_bytes)))))

let cur_lat st min_lat i =
  match st.placed.(i) with
  | Some p -> p.Schedule.assumed_latency
  | None -> min_lat i

(* ------------------------------------------------------------------ *)
(* Legality propagators                                                 *)

let l0_capacity_ok st cluster =
  (not (selective st)) || unbounded_l0 st || st.free_l0.(cluster) > 0

(* The validator's coherence rule: every L0-hinted load of a
   needs_coherence set must be co-located with every store of the set.
   Exact never replicates, so the propagator is plain co-location. *)
let l0_coherence_ok st i cluster =
  match st.coh_set.(i) with
  | None -> true
  | Some s -> (
    match st.coherence with
    | Engine.Force_nl0 -> false
    | Engine.Force_psr -> assert false (* rejected in [solve] *)
    | Engine.Auto | Engine.Force_1c ->
      List.for_all
        (fun j ->
          match st.placed.(j) with
          | Some p -> p.Schedule.cluster = cluster
          | None -> true)
        s.Memdep.stores
      && List.for_all
           (fun j ->
             j = i
             ||
             match st.placed.(j) with
             | Some p -> (not p.Schedule.uses_l0) || p.Schedule.cluster = cluster
             | None -> true)
           s.Memdep.loads)

let store_cluster_ok st i cluster =
  match st.coh_set.(i) with
  | None -> true
  | Some s ->
    List.for_all
      (fun j ->
        match st.placed.(j) with
        | Some p -> (not p.Schedule.uses_l0) || p.Schedule.cluster = cluster
        | None -> true)
      s.Memdep.loads

(* The (latency, uses_l0) options of [i] in [cluster]; [] = cluster
   illegal. Unlike the heuristic's single slack-driven choice, candidate
   loads under an L0 scheme expose BOTH the L0 and the L1 option — the
   search decides. *)
let options st i cluster =
  let ins = Ddg.instr st.ddg i in
  match ins.Instr.opcode with
  | Opcode.Load _ -> (
    match st.scheme with
    | Scheme.Base_unified -> [ (st.cfg.l1.l1_latency, false) ]
    | Scheme.Multivliw -> [ (st.cfg.distributed.local_latency, false) ]
    | Scheme.Interleaved_naive -> [ (distributed_remote_total st.cfg, false) ]
    | Scheme.Interleaved_locality -> (
      match st.home.(i) with
      | Some h when h = cluster -> [ (st.cfg.distributed.local_latency, false) ]
      | Some _ | None -> [ (distributed_remote_total st.cfg, false) ])
    | Scheme.L0 _ ->
      let l1 = (st.cfg.l1.l1_latency, false) in
      if
        st.candidate.(i)
        && l0_coherence_ok st i cluster
        && l0_capacity_ok st cluster
      then [ (st.cfg.l0.l0_latency, true); l1 ]
      else [ l1 ])
  | Opcode.Store _ when Scheme.uses_l0_buffers st.scheme ->
    if store_cluster_ok st i cluster then
      [ (Opcode.base_latency ins.Instr.opcode, false) ]
    else []
  | op -> [ (Opcode.base_latency op, false) ]

(* ------------------------------------------------------------------ *)
(* Windows and comm planning (mirrors Engine's formulas, minus PSR)     *)

let comm_for st producer =
  List.find_opt (fun (c : Schedule.comm) -> c.Schedule.producer = producer)
    st.comms

let earliest_start st min_lat i cluster =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match st.placed.(e.src) with
      | None -> acc
      | Some p ->
        let lat = Ddg.edge_latency ~lat:(cur_lat st min_lat) e in
        let avail =
          if e.kind <> Ddg.Reg_flow || p.Schedule.cluster = cluster then
            p.Schedule.start + lat
          else
            match comm_for st e.src with
            | Some c -> c.Schedule.comm_cycle + st.cfg.comm_latency
            | None -> p.Schedule.start + lat + st.cfg.comm_latency
        in
        max acc (avail - (st.ii * e.distance)))
    0
    (Ddg.preds st.ddg i)

let latest_start st i cluster ~latency =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match st.placed.(e.dst) with
      | None -> acc
      | Some s ->
        let lat = match e.kind with Ddg.Reg_flow -> latency | _ -> 1 in
        let extra =
          if s.Schedule.cluster <> cluster && e.kind = Ddg.Reg_flow then
            st.cfg.comm_latency
          else 0
        in
        let bound = s.Schedule.start + (st.ii * e.distance) - lat - extra in
        Some (match acc with None -> bound | Some b -> min b bound))
    None
    (Ddg.succs st.ddg i)

let self_edges_ok st i ~latency =
  List.for_all
    (fun (e : Ddg.edge) ->
      e.dst <> i
      ||
      let lat = match e.kind with Ddg.Reg_flow -> latency | _ -> 1 in
      lat <= st.ii * e.distance)
    (Ddg.succs st.ddg i)

let mod_slot st c = ((c mod st.ii) + st.ii) mod st.ii

let bus_ok st cycle =
  Mrt.bus_free st.mrt ~cycle && st.slot_mark.(mod_slot st cycle) <> st.slot_gen

let claim_slot st cycle = st.slot_mark.(mod_slot st cycle) <- st.slot_gen

let find_bus_slot st ~from_ ~until =
  let rec go b =
    if b > until then None else if bus_ok st b then Some b else go (b + 1)
  in
  if from_ > until then None else go (max 0 from_)

let plan_comms st i cluster cycle ~latency =
  let exception Infeasible in
  try
    st.slot_gen <- st.slot_gen + 1;
    let tentative = ref [] in
    let budget_by_producer = Hashtbl.create 4 in
    List.iter
      (fun (e : Ddg.edge) ->
        if e.kind = Ddg.Reg_flow && e.src <> i then
          match st.placed.(e.src) with
          | Some p when p.Schedule.cluster <> cluster ->
            let budget = cycle + (st.ii * e.distance) in
            let prev =
              match Hashtbl.find_opt budget_by_producer e.src with
              | Some b -> min b budget
              | None -> budget
            in
            Hashtbl.replace budget_by_producer e.src prev
          | Some _ | None -> ())
      (Ddg.preds st.ddg i);
    Hashtbl.iter
      (fun producer budget ->
        let p = Option.get st.placed.(producer) in
        match comm_for st producer with
        | Some c ->
          if c.Schedule.comm_cycle + st.cfg.comm_latency > budget then
            raise Infeasible
        | None -> (
          let ready = p.Schedule.start + p.Schedule.assumed_latency in
          match
            find_bus_slot st ~from_:ready ~until:(budget - st.cfg.comm_latency)
          with
          | Some b ->
            claim_slot st b;
            tentative := (producer, b) :: !tentative
          | None -> raise Infeasible))
      budget_by_producer;
    let budgets =
      List.filter_map
        (fun (e : Ddg.edge) ->
          if e.kind <> Ddg.Reg_flow || e.dst = i then None
          else
            match st.placed.(e.dst) with
            | Some s when s.Schedule.cluster <> cluster ->
              Some (s.Schedule.start + (st.ii * e.distance) - st.cfg.comm_latency)
            | Some _ | None -> None)
        (Ddg.succs st.ddg i)
    in
    (match budgets with
    | [] -> ()
    | _ -> (
      let until = List.fold_left min max_int budgets in
      match find_bus_slot st ~from_:(cycle + latency) ~until with
      | Some b ->
        claim_slot st b;
        tentative := (i, b) :: !tentative
      | None -> raise Infeasible));
    Some !tentative
  with Infeasible -> None

(* ------------------------------------------------------------------ *)
(* Commit / undo                                                        *)

let commit st i ~depth cluster cycle ~latency ~uses_l0 ~new_comms =
  let ins = Ddg.instr st.ddg i in
  Mrt.reserve_fu st.mrt ~cluster ~fu:(Opcode.fu_class ins.Instr.opcode) ~cycle;
  List.iter
    (fun (producer, b) ->
      Mrt.reserve_bus st.mrt ~cycle:b;
      st.comms <- { Schedule.producer; comm_cycle = b } :: st.comms)
    new_comms;
  st.placed.(i) <-
    Some
      {
        Schedule.cluster;
        start = cycle;
        assumed_latency = latency;
        uses_l0;
        hints = Hint.default;
      };
  st.depth_of.(i) <- depth;
  st.usage.(cluster) <- st.usage.(cluster) + 1;
  if uses_l0 && selective st && not (unbounded_l0 st) then
    st.free_l0.(cluster) <- st.free_l0.(cluster) - 1

let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l)

let undo st i cluster cycle ~uses_l0 ~new_comms =
  let ins = Ddg.instr st.ddg i in
  Mrt.release_fu st.mrt ~cluster ~fu:(Opcode.fu_class ins.Instr.opcode) ~cycle;
  List.iter (fun (_, b) -> Mrt.release_bus st.mrt ~cycle:b) new_comms;
  (* Stack discipline: deeper frames were undone first, so the comms this
     commit consed are exactly the list head. *)
  st.comms <- drop (List.length new_comms) st.comms;
  st.placed.(i) <- None;
  st.usage.(cluster) <- st.usage.(cluster) - 1;
  if uses_l0 && selective st && not (unbounded_l0 st) then
    st.free_l0.(cluster) <- st.free_l0.(cluster) + 1

(* ------------------------------------------------------------------ *)
(* Choice ordering                                                      *)

let comm_cost st i cluster =
  let cost = ref 0 in
  let count (e : Ddg.edge) other =
    if e.kind = Ddg.Reg_flow then
      match st.placed.(other) with
      | Some p when p.Schedule.cluster <> cluster -> incr cost
      | Some _ | None -> ()
  in
  List.iter (fun (e : Ddg.edge) -> count e e.src) (Ddg.preds st.ddg i);
  List.iter (fun (e : Ddg.edge) -> count e e.dst) (Ddg.succs st.ddg i);
  !cost

(* All (cluster, latency, uses_l0) choices of [i], most promising first
   (the first descent then tracks the heuristic's greedy placement), with
   empty-cluster symmetry breaking: among untouched clusters offering the
   same option list, only the lowest-numbered one is explored — the
   machine is homogeneous, so the rest are renamings. *)
let ordered_choices st i =
  let n = st.cfg.num_clusters in
  let fresh_seen = ref [] in
  let per_cluster =
    List.filter_map
      (fun c ->
        match options st i c with
        | [] -> None
        | opts ->
          if st.usage.(c) = 0 then
            if List.mem opts !fresh_seen then None
            else begin
              fresh_seen := opts :: !fresh_seen;
              Some (c, opts)
            end
          else Some (c, opts))
      (List.init n (fun c -> c))
  in
  List.concat_map
    (fun (c, opts) ->
      List.map
        (fun (latency, uses_l0) ->
          let l0_bonus = if uses_l0 then 0 else 1 in
          let home_bonus =
            match (st.scheme, st.home.(i)) with
            | Scheme.Interleaved_locality, Some h
              when Instr.is_memory_access (Ddg.instr st.ddg i) ->
              if h = c then 0 else 1
            | _ -> 0
          in
          ((l0_bonus, home_bonus, comm_cost st i c, st.usage.(c), c),
           (c, latency, uses_l0)))
        opts)
    per_cluster
  |> List.sort compare
  |> List.map snd

(* Deepest DFS level whose placement constrains [i] through dependence
   windows or coherence legality; -1 when nothing placed does. *)
let culprit_depth st i =
  let d = ref (-1) in
  let see j =
    match st.placed.(j) with
    | Some _ -> if st.depth_of.(j) > !d then d := st.depth_of.(j)
    | None -> ()
  in
  List.iter (fun (e : Ddg.edge) -> see e.src) (Ddg.preds st.ddg i);
  List.iter (fun (e : Ddg.edge) -> see e.dst) (Ddg.succs st.ddg i);
  (match st.coh_set.(i) with
  | Some s ->
    List.iter see s.Memdep.loads;
    List.iter see s.Memdep.stores
  | None -> ());
  !d

(* ------------------------------------------------------------------ *)
(* The DFS                                                              *)

type dfs = Solved of Schedule.t | Fail of int
(* [Fail level]: no completion exists without revising a choice at depth
   <= [level]; a frame deeper than [level] propagates it unchanged. *)

let search_ii st ~loop ~order ~regs_check =
  let n = Array.length order in
  let rec dfs depth =
    if depth = n then begin
      let sch =
        {
          Schedule.loop;
          ddg = st.ddg;
          scheme = st.scheme;
          ii = st.ii;
          placements = Array.map Option.get st.placed;
          comms = List.rev st.comms;
          prefetches = [];
          replicas = [];
        }
      in
      if regs_check sch then Solved sch else Fail (n - 1)
    end
    else begin
      let i = order.(depth) in
      let culprit = culprit_depth st i in
      let committed_any = ref false in
      let resource_seen = ref false in
      let ins = Ddg.instr st.ddg i in
      let fu = Opcode.fu_class ins.Instr.opcode in
      (* Try one (cluster, latency) choice across its cycle window;
         [Some r] short-circuits the whole frame. *)
      let try_choice (cluster, latency, uses_l0) =
        if not (self_edges_ok st i ~latency) then None
        else begin
          let est = earliest_start st
              (fun _ -> latency (* only placed nodes are queried *)) i cluster
          in
          let last =
            match latest_start st i cluster ~latency with
            | Some l when l < est -> est - 1
            | Some l -> est + min st.ii (l - est + 1) - 1
            | None -> est + st.ii - 1
          in
          let rec try_from t =
            if t > last then None
            else if t < 0 then try_from (t + 1)
            else begin
              st.nodes <- st.nodes + 1;
              if st.nodes > st.budget then raise Budget;
              if not (Mrt.fu_free st.mrt ~cluster ~fu ~cycle:t) then begin
                resource_seen := true;
                try_from (t + 1)
              end
              else
                match plan_comms st i cluster t ~latency with
                | None ->
                  resource_seen := true;
                  try_from (t + 1)
                | Some new_comms -> (
                  commit st i ~depth cluster t ~latency ~uses_l0 ~new_comms;
                  committed_any := true;
                  match dfs (depth + 1) with
                  | Solved _ as s -> Some s
                  | Fail bj ->
                    undo st i cluster t ~uses_l0 ~new_comms;
                    if bj < depth then Some (Fail bj) else try_from (t + 1))
            end
          in
          try_from est
        end
      in
      let rec over = function
        | [] ->
          (* A frame that never even committed and never hit a resource
             failed purely on windows/legality: only its culprits can
             change that, so jump straight to the deepest one. *)
          if (not !committed_any) && not !resource_seen then Fail culprit
          else Fail (depth - 1)
        | choice :: rest -> (
          match try_choice choice with Some r -> r | None -> over rest)
      in
      over (ordered_choices st i)
    end
  in
  match dfs 0 with
  | Solved sch -> `Solved sch
  | Fail _ -> `Refuted
  | exception Budget -> `Budget

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

(* The most optimistic latency an instruction could be scheduled with
   under this scheme — the sound latency function for the recurrence
   lower bound and the SMS priority order. *)
let min_latency (cfg : Config.t) scheme coherence ~candidate ~home ~coh_set
    ddg i =
  let ins = Ddg.instr ddg i in
  match ins.Instr.opcode with
  | Opcode.Load _ -> (
    match scheme with
    | Scheme.Base_unified -> cfg.l1.l1_latency
    | Scheme.Multivliw -> cfg.distributed.local_latency
    | Scheme.Interleaved_naive -> distributed_remote_total cfg
    | Scheme.Interleaved_locality -> (
      match home.(i) with
      | Some _ -> cfg.distributed.local_latency
      | None -> distributed_remote_total cfg)
    | Scheme.L0 _ ->
      if
        candidate.(i)
        && not (coherence = Engine.Force_nl0 && coh_set.(i) <> None)
      then min cfg.l0.l0_latency cfg.l1.l1_latency
      else cfg.l1.l1_latency)
  | op -> Opcode.base_latency op

(* The optimistic per-instruction model the lower bound is certified
   against: DDG plus candidate / home / coherence-set analyses and the
   minimal legal latency assignment. *)
let optimistic_model (cfg : Config.t) scheme coherence loop =
  let ddg = Loop.ddg loop in
  let deps = Memdep.compute ddg in
  let n = Ddg.node_count ddg in
  let candidate =
    Array.init n (fun i ->
        let ins = Ddg.instr ddg i in
        Instr.is_load ins && Instr.is_candidate ins
        &&
        match ins.Instr.memref with
        | Some r -> r.Memref.elem_bytes <= cfg.Config.l0.subblock_bytes
        | None -> false)
  in
  let home = Array.init n (fun i -> static_home cfg loop (Ddg.instr ddg i)) in
  let coh_set =
    Array.init n (fun i ->
        match Memdep.set_of deps i with
        | Some s when Memdep.needs_coherence s -> Some s
        | Some _ | None -> None)
  in
  let min_lat =
    min_latency cfg scheme coherence ~candidate ~home ~coh_set ddg
  in
  (ddg, candidate, home, coh_set, min_lat)

let lower_breakdown (cfg : Config.t) scheme ?(coherence = Engine.Auto) loop =
  let ddg, _, _, _, min_lat = optimistic_model cfg scheme coherence loop in
  Mii.breakdown cfg ddg ~lat:min_lat

let solve (cfg : Config.t) scheme ?(coherence = Engine.Auto)
    ?(budget = default_budget) ?(max_ii = 256) loop =
  if coherence = Engine.Force_psr then
    invalid_arg "Exact.solve: the PSR coherence ablation is not supported by \
                 the exact backend";
  let ddg, candidate, home, coh_set, min_lat =
    optimistic_model cfg scheme coherence loop
  in
  let n = Ddg.node_count ddg in
  let lower =
    max 1 (max (Mii.res_mii cfg ddg) (Ddg.rec_mii ddg ~lat:min_lat))
  in
  let entries_per_cluster =
    match cfg.Config.l0.capacity with
    | Config.Entries e -> e
    | Config.Unbounded -> max_int / 2
    | Config.No_l0 -> 0
  in
  let total_nodes = ref 0 in
  let budget_hit_below = ref false in
  let attempt ii =
    let st =
      {
        cfg;
        scheme;
        coherence;
        ddg;
        ii;
        mrt = Mrt.create cfg ~ii;
        placed = Array.make n None;
        depth_of = Array.make n (-1);
        comms = [];
        free_l0 = Array.make cfg.num_clusters entries_per_cluster;
        candidate;
        home;
        coh_set;
        usage = Array.make cfg.num_clusters 0;
        slot_mark = Array.make ii 0;
        slot_gen = 0;
        nodes = 0;
        budget;
      }
    in
    let times = Ddg.compute_times ddg ~ii ~lat:min_lat in
    let order = Array.of_list (Sms.order ?times ddg ~lat:min_lat ~ii) in
    let regs_check sch =
      not
        (Array.exists
           (fun p -> p > cfg.regs_per_cluster)
           (Engine.max_live cfg sch))
    in
    let r = search_ii st ~loop ~order ~regs_check in
    total_nodes := !total_nodes + st.nodes;
    r
  in
  let rec search ii =
    if ii > max_ii then
      if !budget_hit_below then
        Ok
          {
            exact_schedule = None;
            exact_verdict = Budget_exhausted;
            exact_lower = lower;
            exact_nodes = !total_nodes;
          }
      else
        Error
          {
            Engine.inf_loop = loop.Loop.name;
            inf_mii = lower;
            inf_max_ii = max_ii;
            inf_scheme = scheme;
            inf_backend = Engine.Exact;
          }
    else
      match attempt ii with
      | `Solved sch ->
        let sch =
          if Scheme.uses_l0_buffers scheme then Hint_assign.apply cfg sch
          else sch
        in
        Ok
          {
            exact_schedule = Some sch;
            exact_verdict =
              (if !budget_hit_below then Feasible_at ii else Optimal);
            exact_lower = lower;
            exact_nodes = !total_nodes;
          }
      | `Refuted -> search (ii + 1)
      | `Budget ->
        budget_hit_below := true;
        search (ii + 1)
  in
  search lower
