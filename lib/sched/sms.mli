(** Swing-Modulo-Scheduling node ordering (step 2; Llosa et al., PACT'96).

    SMS orders the DDG nodes so that (i) recurrence-critical nodes come
    first and (ii) every node is ordered adjacent to an already-ordered
    neighbour, which lets the placement loop keep producer and consumer
    close and so favours low II and low register pressure.

    This implementation keeps the part of the published algorithm our
    placement engine relies on: nodes are emitted in topological order of
    the SCC condensation — so outside recurrences an instruction is
    always placed after its producers and its window only closes on one
    side — and within each component (recurrence) nodes go by earliest
    start and criticality (slack), most critical first on ties. *)

open Flexl0_ir

val order : ?times:Ddg.times -> Ddg.t -> lat:(int -> int) -> ii:int -> int list
(** A permutation of [0 .. node_count - 1]. [ii] is the II at which
    criticality (slack) is measured — normally the MII. Falls back to a
    plain criticality sort if [ii] is infeasible. [?times] short-circuits
    the fixpoint when the caller already computed it at this (II, lat). *)
