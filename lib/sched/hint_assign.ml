open Flexl0_ir
module Config = Flexl0_arch.Config
module Hint = Flexl0_mem.Hint

type load_info = {
  id : int;
  memref : Memref.t;
  cluster : int;
  start : int;
}

let l0_loads (sch : Schedule.t) =
  Array.to_list (Ddg.instrs sch.ddg)
  |> List.filter_map (fun (ins : Instr.t) ->
         let p = sch.placements.(ins.Instr.id) in
         if Instr.is_load ins && p.Schedule.uses_l0 then
           match ins.Instr.memref with
           | Some memref ->
             Some
               {
                 id = ins.Instr.id;
                 memref;
                 cluster = p.Schedule.cluster;
                 start = p.Schedule.start;
               }
           | None -> None
         else None)

(* Interleaved groups: same array / stride / granularity, stride = +-N
   elements per body iteration, at least two members, clusters following
   the lane rotation. Returns the member ids of every valid group. *)
let interleaved_groups (cfg : Config.t) loads =
  let n = cfg.num_clusters in
  let key l = (l.memref.Memref.array_id, l.memref.Memref.stride, l.memref.Memref.elem_bytes) in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let k = key l in
      Hashtbl.replace groups k
        (l :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    loads;
  Hashtbl.fold
    (fun (_arr, stride, _gran) members acc ->
      match stride with
      | Memref.Const s when abs s = n && List.length members >= 2 ->
        let sign = if s < 0 then -1 else 1 in
        let rotation_ok =
          match members with
          | [] -> false
          | first :: rest ->
            List.for_all
              (fun m ->
                let d = sign * (m.memref.Memref.offset - first.memref.Memref.offset) in
                let rot = ((d mod n) + n) mod n in
                m.cluster = (first.cluster + rot) mod n)
              rest
        in
        if rotation_ok then members :: acc else acc
      | _ -> acc)
    groups []

(* Mutable occupancy of memory-unit slots (cluster, cycle mod ii). *)
module Occupancy = struct
  type t = { ii : int; table : (int * int, int) Hashtbl.t }

  let slot t c = ((c mod t.ii) + t.ii) mod t.ii

  let of_schedule (sch : Schedule.t) =
    let t = { ii = sch.ii; table = Hashtbl.create 32 } in
    let charge cluster cycle =
      let key = (cluster, slot t cycle) in
      Hashtbl.replace t.table key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.table key))
    in
    Array.iteri
      (fun i p ->
        let ins = Ddg.instr sch.ddg i in
        if Opcode.fu_class ins.Instr.opcode = Opcode.Mem_fu then
          charge p.Schedule.cluster p.Schedule.start)
      sch.placements;
    List.iter
      (fun (r : Schedule.replica) -> charge r.rep_cluster r.rep_start)
      sch.replicas;
    t

  let used t ~cluster ~cycle = Hashtbl.mem t.table (cluster, slot t cycle)

  let charge t ~cluster ~cycle =
    let key = (cluster, slot t cycle) in
    Hashtbl.replace t.table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.table key))
end

let apply (cfg : Config.t) (sch : Schedule.t) =
  let loads = l0_loads sch in
  let groups = interleaved_groups cfg loads in
  let in_group = Hashtbl.create 8 in
  List.iter
    (fun members ->
      let leader =
        List.fold_left
          (fun acc m -> if m.start < acc.start then m else acc)
          (List.hd members) members
      in
      List.iter (fun m -> Hashtbl.replace in_group m.id (leader.id = m.id)) members)
    groups;
  (* Same-cluster linear streams share subblocks: only the first
     instruction of each (array, stride, gran, cluster) stream drives the
     prefetch chain. *)
  let stream_leader = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if not (Hashtbl.mem in_group l.id) then begin
        let k =
          (l.memref.Memref.array_id, l.memref.Memref.stride,
           l.memref.Memref.elem_bytes, l.cluster)
        in
        match Hashtbl.find_opt stream_leader k with
        | Some other when other.start <= l.start -> ()
        | _ -> Hashtbl.replace stream_leader k l
      end)
    loads;
  let is_stream_leader l =
    let k =
      (l.memref.Memref.array_id, l.memref.Memref.stride, l.memref.Memref.elem_bytes,
       l.cluster)
    in
    match Hashtbl.find_opt stream_leader k with
    | Some leader -> leader.id = l.id
    | None -> false
  in
  let occupancy = Occupancy.of_schedule sch in
  (* Step 5: explicit prefetches for L0 loads whose stride the hints do
     not cover. *)
  let needs_explicit l =
    match Memref.stride_class l.memref with
    | `Good -> false
    | `Unstrided -> false  (* never a candidate in the first place *)
    | `Other -> not (Hashtbl.mem in_group l.id)
  in
  let prefetches = ref [] in
  List.iter
    (fun l ->
      if needs_explicit l then begin
        let rec find k =
          if k >= sch.ii then None
          else if not (Occupancy.used occupancy ~cluster:l.cluster ~cycle:k) then
            Some k
          else find (k + 1)
        in
        match find 0 with
        | None -> ()  (* no free slot: the load keeps stalling, like the paper *)
        | Some cycle ->
          Occupancy.charge occupancy ~cluster:l.cluster ~cycle;
          (* Lead sized for the common L1-hit fill; chasing the L2 miss
             latency instead would keep so many subblocks in flight that
             small buffers thrash. *)
          let fill = cfg.l1.l1_latency + 1 in
          let lead = min 3 (max 1 ((fill + sch.ii - 1) / sch.ii)) in
          prefetches :=
            {
              Schedule.for_instr = l.id;
              pf_cluster = l.cluster;
              pf_start = cycle;
              lead_iterations = lead;
            }
            :: !prefetches
      end)
    loads;
  (* Coherence: stores whose set contains an L0-using load must refresh
     the local copy. *)
  let deps = Memdep.compute sch.ddg in
  let store_updates_l0 i =
    match Memdep.set_of deps i with
    | Some s ->
      List.exists (fun load -> sch.placements.(load).Schedule.uses_l0) s.Memdep.loads
    | None -> false
  in
  let hint_for i =
    let ins = Ddg.instr sch.ddg i in
    let p = sch.placements.(i) in
    if Instr.is_load ins && p.Schedule.uses_l0 then begin
      let l = List.find (fun l -> l.id = i) loads in
      let mapping =
        if Hashtbl.mem in_group i then Hint.Interleaved_map else Hint.Linear_map
      in
      let direction s = if s > 0 then Hint.Positive else Hint.Negative in
      let prefetch =
        match (l.memref.Memref.stride, Hashtbl.find_opt in_group i) with
        | Memref.Const 0, _ -> Hint.No_prefetch
        | Memref.Const s, Some is_leader ->
          if is_leader then direction s else Hint.No_prefetch
        | Memref.Const s, None when abs s = 1 ->
          if is_stream_leader l then direction s else Hint.No_prefetch
        | Memref.Const _, None -> Hint.No_prefetch  (* explicit prefetch covers it *)
        | Memref.Unknown, _ -> Hint.No_prefetch
      in
      let next_cycle = p.Schedule.start + cfg.l0.l0_latency in
      let access =
        if Occupancy.used occupancy ~cluster:p.Schedule.cluster ~cycle:next_cycle
        then Hint.Par_access
        else Hint.Seq_access
      in
      Hint.make ~access ~mapping ~prefetch ()
    end
    else if Instr.is_store ins && store_updates_l0 i then
      Hint.make ~access:Hint.Par_access ()
    else Hint.default
  in
  let placements =
    Array.mapi
      (fun i p -> { p with Schedule.hints = hint_for i })
      sch.placements
  in
  { sch with Schedule.placements; prefetches = List.rev !prefetches }
