open Flexl0_ir

type binding = Int_bound | Mem_bound | Fp_bound | Recurrence_bound

let binding_to_string = function
  | Int_bound -> "int"
  | Mem_bound -> "mem"
  | Fp_bound -> "fp"
  | Recurrence_bound -> "recurrence"

type breakdown = { bd_res : int; bd_rec : int; bd_binding : binding }

let res_mii_by_class (cfg : Flexl0_arch.Config.t) ddg =
  let int_ops = ref 0 and mem_ops = ref 0 and fp_ops = ref 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      match Opcode.fu_class ins.opcode with
      | Opcode.Int_fu -> incr int_ops
      | Opcode.Mem_fu -> incr mem_ops
      | Opcode.Fp_fu -> incr fp_ops
      | Opcode.Bus -> ())
    (Ddg.instrs ddg);
  let bound ops units =
    if ops = 0 then 1 else (ops + units - 1) / units
  in
  let n = cfg.num_clusters in
  ( bound !int_ops (cfg.int_units * n),
    bound !mem_ops (cfg.mem_units * n),
    bound !fp_ops (cfg.fp_units * n) )

let res_mii cfg ddg =
  let i, m, f = res_mii_by_class cfg ddg in
  max i (max m f)

let mii cfg ddg ~lat = max (res_mii cfg ddg) (Ddg.rec_mii ddg ~lat)

let breakdown cfg ddg ~lat =
  let i, m, f = res_mii_by_class cfg ddg in
  let bd_res = max i (max m f) in
  let bd_rec = Ddg.rec_mii ddg ~lat in
  (* Recurrence wins ties: a loop whose dependence cycles already force
     the resource bound is recurrence-limited, not unit-limited. *)
  let bd_binding =
    if bd_rec >= bd_res then Recurrence_bound
    else if i = bd_res then Int_bound
    else if m = bd_res then Mem_bound
    else Fp_bound
  in
  { bd_res; bd_rec; bd_binding }
