open Flexl0_ir

let res_mii (cfg : Flexl0_arch.Config.t) ddg =
  let int_ops = ref 0 and mem_ops = ref 0 and fp_ops = ref 0 in
  Array.iter
    (fun (ins : Instr.t) ->
      match Opcode.fu_class ins.opcode with
      | Opcode.Int_fu -> incr int_ops
      | Opcode.Mem_fu -> incr mem_ops
      | Opcode.Fp_fu -> incr fp_ops
      | Opcode.Bus -> ())
    (Ddg.instrs ddg);
  let bound ops units =
    if ops = 0 then 1 else (ops + units - 1) / units
  in
  let n = cfg.num_clusters in
  max
    (bound !int_ops (cfg.int_units * n))
    (max (bound !mem_ops (cfg.mem_units * n)) (bound !fp_ops (cfg.fp_units * n)))

let mii cfg ddg ~lat = max (res_mii cfg ddg) (Ddg.rec_mii ddg ~lat)
