(* Flat snapshot arena: a growable byte buffer written front to back
   with fixed-width scalar codecs. One snapshot is one contiguous
   region — no per-field framing, no Marshal — so capturing state is a
   linear sweep and the resulting string can be handed to {!Frame.encode}
   unchanged. The reader is the exact mirror and fails with a typed
   exception instead of reading garbage when the stream is shorter than
   the structure expects or a section tag does not match.

   All scalar codecs go through [Bytes.set_int64_le] /
   [String.get_int64_le] and bulk copies through [Bytes.blit_string], so
   a snapshot of flat state (Bytes pools, int Bigarray planes) is a
   bounds-checked blit rather than a per-byte loop. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type intba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

module W = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(initial = 4096) () =
    { buf = Bytes.create (max 64 initial); len = 0 }

  let length t = t.len

  let ensure t extra =
    let cap = Bytes.length t.buf in
    if t.len + extra > cap then begin
      let cap' = max (t.len + extra) (2 * cap) in
      let bigger = Bytes.create cap' in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end

  let byte t c =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len c;
    t.len <- t.len + 1

  (* Fixed 8-byte little-endian int64: platform- and word-size-independent. *)
  let i64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len v;
    t.len <- t.len + 8

  let int t v = i64 t (Int64.of_int v)

  let string t s =
    let n = String.length s in
    int t n;
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let bytes t b = string t (Bytes.unsafe_to_string b)

  let int_array t a =
    int t (Array.length a);
    Array.iter (fun v -> int t v) a

  (* Same wire format as [int_array] — a length followed by that many
     8-byte little-endian words — so flattening an int array into a
     Bigarray plane does not change a single snapshot byte. *)
  let int_ba t (a : intba) =
    let n = Bigarray.Array1.dim a in
    int t n;
    ensure t (8 * n);
    let buf = t.buf in
    let base = t.len in
    for i = 0 to n - 1 do
      Bytes.set_int64_le buf
        (base + (8 * i))
        (Int64.of_int (Bigarray.Array1.unsafe_get a i))
    done;
    t.len <- t.len + (8 * n)

  (* 4-character section marker; cheap structure check during restore. *)
  let tag t s =
    if String.length s <> 4 then invalid_arg "Flatio.W.tag: want 4 chars";
    String.iter (fun c -> byte t c) s

  let contents t = Bytes.sub_string t.buf 0 t.len
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let need t n what =
    if t.pos + n > String.length t.data then
      corrupt "truncated snapshot: need %d bytes for %s at offset %d (have %d)"
        n what t.pos
        (String.length t.data - t.pos)

  let i64 t =
    need t 8 "int64";
    let v = String.get_int64_le t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let int t = Int64.to_int (i64 t)

  let string t =
    let n = int t in
    if n < 0 then corrupt "negative string length %d at offset %d" n t.pos;
    need t n "string body";
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t = Bytes.unsafe_of_string (string t)

  (* In-place restore of a fixed-size byte buffer (e.g. the backing
     store, whose identity is captured by hierarchy closures and must
     not change). *)
  let bytes_into t dst =
    let n = int t in
    if n <> Bytes.length dst then
      corrupt "byte buffer length %d does not match live buffer %d" n
        (Bytes.length dst);
    need t n "byte buffer body";
    Bytes.blit_string t.data t.pos dst 0 n;
    t.pos <- t.pos + n

  let int_array t =
    let n = int t in
    if n < 0 then corrupt "negative array length %d" n;
    need t (8 * n) "int array body";
    Array.init n (fun _ -> int t)

  let int_array_into t dst =
    let n = int t in
    if n <> Array.length dst then
      corrupt "int array length %d does not match live array %d" n
        (Array.length dst);
    need t (8 * n) "int array body";
    for i = 0 to n - 1 do
      dst.(i) <- int t
    done

  (* Mirror of [W.int_ba]: in-place restore of an int Bigarray plane of
     exactly the recorded length. *)
  let int_ba_into t (dst : intba) =
    let n = int t in
    if n <> Bigarray.Array1.dim dst then
      corrupt "int plane length %d does not match live plane %d" n
        (Bigarray.Array1.dim dst);
    need t (8 * n) "int plane body";
    let data = t.data in
    let base = t.pos in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst i
        (Int64.to_int (String.get_int64_le data (base + (8 * i))))
    done;
    t.pos <- t.pos + (8 * n)

  let tag t want =
    need t 4 ("section tag " ^ want);
    let got = String.sub t.data t.pos 4 in
    if got <> want then
      corrupt "section tag mismatch at offset %d: want %S, got %S" t.pos want
        got;
    t.pos <- t.pos + 4

  let expect_end t =
    if t.pos <> String.length t.data then
      corrupt "%d trailing bytes after the last section"
        (String.length t.data - t.pos)
end
