(* Flat snapshot arena: a growable Bigarray of bytes written front to
   back with fixed-width scalar codecs. One snapshot is one contiguous
   region — no per-field framing, no Marshal — so capturing state is a
   linear sweep and the resulting string can be handed to {!Frame.encode}
   unchanged. The reader is the exact mirror and fails with a typed
   exception instead of reading garbage when the stream is shorter than
   the structure expects or a section tag does not match. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

module W = struct
  type t = { mutable buf : bigbytes; mutable len : int }

  let create ?(initial = 4096) () =
    {
      buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (max 64 initial);
      len = 0;
    }

  let length t = t.len

  let ensure t extra =
    let cap = Bigarray.Array1.dim t.buf in
    if t.len + extra > cap then begin
      let cap' = max (t.len + extra) (2 * cap) in
      let bigger = Bigarray.Array1.create Bigarray.char Bigarray.c_layout cap' in
      Bigarray.Array1.blit t.buf (Bigarray.Array1.sub bigger 0 cap);
      t.buf <- bigger
    end

  let byte t c =
    ensure t 1;
    Bigarray.Array1.unsafe_set t.buf t.len c;
    t.len <- t.len + 1

  (* Fixed 8-byte little-endian int64: platform- and word-size-independent. *)
  let i64 t v =
    ensure t 8;
    let buf = t.buf and base = t.len in
    for i = 0 to 7 do
      Bigarray.Array1.unsafe_set buf (base + i)
        (Char.unsafe_chr
           (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
    done;
    t.len <- t.len + 8

  let int t v = i64 t (Int64.of_int v)

  let string t s =
    let n = String.length s in
    int t n;
    ensure t n;
    let buf = t.buf and base = t.len in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set buf (base + i) (String.unsafe_get s i)
    done;
    t.len <- t.len + n

  let bytes t b = string t (Bytes.unsafe_to_string b)

  let int_array t a =
    int t (Array.length a);
    Array.iter (fun v -> int t v) a

  (* 4-character section marker; cheap structure check during restore. *)
  let tag t s =
    if String.length s <> 4 then invalid_arg "Flatio.W.tag: want 4 chars";
    String.iter (fun c -> byte t c) s

  let contents t = String.init t.len (fun i -> Bigarray.Array1.unsafe_get t.buf i)
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let need t n what =
    if t.pos + n > String.length t.data then
      corrupt "truncated snapshot: need %d bytes for %s at offset %d (have %d)"
        n what t.pos
        (String.length t.data - t.pos)

  let i64 t =
    need t 8 "int64";
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (String.unsafe_get t.data (t.pos + i))))
    done;
    t.pos <- t.pos + 8;
    !v

  let int t = Int64.to_int (i64 t)

  let string t =
    let n = int t in
    if n < 0 then corrupt "negative string length %d at offset %d" n t.pos;
    need t n "string body";
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t = Bytes.unsafe_of_string (string t)

  (* In-place restore of a fixed-size byte buffer (e.g. the backing
     store, whose identity is captured by hierarchy closures and must
     not change). *)
  let bytes_into t dst =
    let n = int t in
    if n <> Bytes.length dst then
      corrupt "byte buffer length %d does not match live buffer %d" n
        (Bytes.length dst);
    need t n "byte buffer body";
    Bytes.blit_string t.data t.pos dst 0 n;
    t.pos <- t.pos + n

  let int_array t =
    let n = int t in
    if n < 0 then corrupt "negative array length %d" n;
    need t (8 * n) "int array body";
    Array.init n (fun _ -> int t)

  let int_array_into t dst =
    let n = int t in
    if n <> Array.length dst then
      corrupt "int array length %d does not match live array %d" n
        (Array.length dst);
    need t (8 * n) "int array body";
    for i = 0 to n - 1 do
      dst.(i) <- int t
    done

  let tag t want =
    need t 4 ("section tag " ^ want);
    let got = String.sub t.data t.pos 4 in
    if got <> want then
      corrupt "section tag mismatch at offset %d: want %S, got %S" t.pos want
        got;
    t.pos <- t.pos + 4

  let expect_end t =
    if t.pos <> String.length t.data then
      corrupt "%d trailing bytes after the last section"
        (String.length t.data - t.pos)
end
