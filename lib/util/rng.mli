(** Deterministic pseudo-random number generator.

    Experiments must be reproducible across runs and platforms, so all
    stochastic choices in the workload generators go through this
    self-contained splitmix64 generator rather than [Stdlib.Random].

    {b Determinism contract.} A generator's output is a pure function of
    its seed and the sequence of draws made on it: no global state, no
    platform or word-size dependence (all arithmetic is on [int64]), no
    dependence on wall-clock time. Two runs that create generators with
    equal seeds and make the same draws in the same order observe
    identical values — this is what makes fuzz cases and fault-injection
    plans replayable from a single integer. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]
    by one draw. The child's stream is the splitmix64 sequence seeded by
    that draw, so it is (statistically) decorrelated from the parent's
    subsequent output and from every other split child.

    Use one child per logical consumer — per benchmark, per fuzz case,
    per fault plan — so the number of draws one consumer makes never
    perturbs another: [split]ting k times then drawing arbitrarily from
    each child yields the same k child streams regardless of the order
    or volume of the draws. The fuzzer leans on this to keep kernel
    generation and fault-plan seeding independent while both replay from
    the one [--seed]. *)

val keyed : seed:int -> string -> t
(** [keyed ~seed key] is the keyed analogue of {!split}: an independent
    generator that is a pure function of [(seed, key)], regardless of
    how many other generators were derived before or after it. Use it
    when consumers are identified by stable string ids rather than by
    position in a sequence — the parallel experiment runner derives each
    job's seed this way, so a job's stream does not depend on scheduling
    order, completion order, or which jobs a resumed campaign skips. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniform element of [arr], which must be non-empty. *)

val weighted_pick : t -> (float * 'a) list -> 'a
(** [weighted_pick t choices] draws an element with probability proportional
    to its weight. Weights must be positive and the list non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val state : t -> int64
(** The generator's current internal state — the splitmix64 counter.
    Captured by simulation snapshots so a resumed run continues the
    exact decision stream an uninterrupted run would have drawn. *)

val set_state : t -> int64 -> unit
(** Restore a state previously read with {!state}. *)
