(** Deterministic pseudo-random number generator.

    Experiments must be reproducible across runs and platforms, so all
    stochastic choices in the workload generators go through this
    self-contained splitmix64 generator rather than [Stdlib.Random]. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each benchmark / loop its own stream so adding a loop
    does not perturb the others. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniform element of [arr], which must be non-empty. *)

val weighted_pick : t -> (float * 'a) list -> 'a
(** [weighted_pick t choices] draws an element with probability proportional
    to its weight. Weights must be positive and the list non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
