(** Self-delimiting, digest-checked binary frames.

    One framing implementation, three consumers: the crash-safe
    {!Journal} file, the {!Flexl0.Runner} worker→supervisor result
    pipes, and the serve daemon's request/response protocol. A frame is

    {v magic (4) | payload length (4, big-endian) | MD5 (16) | payload v}

    Everything needed to detect a torn tail sits in front of the
    payload, so a reader never consumes past what a killed writer
    managed to flush, and a flipped byte anywhere in the payload fails
    the digest instead of being misread. *)

val magic : string
(** ["FLJ1"] — shared by every consumer so journals written by earlier
    binaries keep loading. *)

val header_bytes : int
(** Bytes before the payload: 4 magic + 4 length + 16 digest. *)

val max_payload : int
(** Upper bound on a payload's length (64 MiB). A decoded length prefix
    above it is treated as corruption, not as an instruction to buffer
    gigabytes waiting for a frame that will never complete — a single
    flipped high bit in the length field must not become an unbounded
    allocation. *)

val encode : string -> string
(** [magic ^ length ^ md5 ^ payload], self-delimiting. Raises
    [Invalid_argument] when the payload exceeds {!max_payload}. *)

val decode : string -> pos:int -> (string * int) option
(** [decode s ~pos] returns the payload starting at [pos] and the
    position one past the frame, or [None] when the data at [pos] is
    truncated, has a wrong magic, or fails its digest. Journal replay
    wants exactly this coarse answer: any defect ends the intact
    prefix. *)

type check =
  | Frame of string * int  (** intact payload and one-past-frame position *)
  | Partial  (** a valid prefix — more bytes may still arrive *)
  | Corrupt of string
      (** never completes into a valid frame: wrong magic, negative or
          over-{!max_payload} length, or a complete frame whose digest
          does not match *)

val check : string -> pos:int -> check
(** Like {!decode} but distinguishes "keep reading" from "give up" — the
    serve protocol needs the difference to reject a corrupted request
    with a typed error instead of waiting forever for bytes that cannot
    repair it. A well-formed header whose payload has not fully arrived
    is [Partial]; a complete frame with a failing digest is [Corrupt]. *)
