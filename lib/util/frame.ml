(* Frame layout: 4-byte magic, 4-byte big-endian payload length, 16-byte
   raw MD5 of the payload, payload. Everything needed to detect a torn
   tail is in front of the payload, so a reader never consumes past what
   the writer managed to flush. *)

let magic = "FLJ1"
let header_bytes = 4 + 4 + 16

(* 64 MiB. The largest real payload (a full fuzz report or figure
   campaign rendering) is under a megabyte; anything bigger is a corrupt
   length prefix, and believing it would make a reader buffer without
   bound waiting for bytes that will never arrive. *)
let max_payload = 64 * 1024 * 1024

let encode payload =
  let len = String.length payload in
  if len > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.encode: payload of %d bytes exceeds the %d-byte \
                       frame limit" len max_payload);
  let b = Buffer.create (header_bytes + len) in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

type check =
  | Frame of string * int
  | Partial
  | Corrupt of string

let check s ~pos =
  if pos < 0 then Corrupt "negative frame position"
  else
    let avail = String.length s - pos in
    if avail <= 0 then Partial
    else if avail < 4 then
      if String.sub s pos avail = String.sub magic 0 avail then Partial
      else Corrupt "bad frame magic"
    else if String.sub s pos 4 <> magic then Corrupt "bad frame magic"
    else if avail < 8 then Partial
    else
      (* validate the length as soon as its field is readable: an absurd
         value must not keep a reader buffering for the rest of a header
         that will never arrive *)
      let len = Int32.to_int (String.get_int32_be s (pos + 4)) in
      if len < 0 then Corrupt "negative frame length"
      else if len > max_payload then
        Corrupt
          (Printf.sprintf "frame length %d exceeds the %d-byte limit" len
             max_payload)
      else if avail < header_bytes || avail - header_bytes < len then Partial
      else
        let digest = String.sub s (pos + 8) 16 in
        let payload = String.sub s (pos + header_bytes) len in
        if Digest.string payload <> digest then
          Corrupt "frame payload failed its MD5 digest"
        else Frame (payload, pos + header_bytes + len)

let decode s ~pos =
  match check s ~pos with
  | Frame (payload, next) -> Some (payload, next)
  | Partial | Corrupt _ -> None
