(** Flat snapshot arena.

    A snapshot is one contiguous byte region written front to back with
    fixed-width codecs (8-byte little-endian integers, length-prefixed
    strings) into a growable byte buffer — no per-field framing, no
    [Marshal], no platform or word-size dependence. The simulator's
    capture path is therefore a single linear sweep over its state, and
    the resulting string is handed to {!Frame.encode} unchanged for
    versioning, digesting and torn-tail tolerance on disk or on the
    wire.

    The reader mirrors the writer exactly. Any structural disagreement —
    stream shorter than the structure, section tag mismatch, a length
    that does not match the live buffer being restored into — raises
    {!Corrupt} with a description instead of silently reading garbage;
    restore paths catch it and report a typed error. *)

exception Corrupt of string

type intba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A flat plane of native ints — the struct-of-arrays building block of
    the data-oriented memory models. Reads and writes on it are unboxed,
    and it snapshots as one bounds-checked sweep. *)

(** Writer: append-only, grows by doubling. *)
module W : sig
  type t

  val create : ?initial:int -> unit -> t
  val length : t -> int

  val int : t -> int -> unit
  (** Stored as a fixed 8-byte little-endian int64. *)

  val i64 : t -> int64 -> unit
  val string : t -> string -> unit
  val bytes : t -> Bytes.t -> unit
  val int_array : t -> int array -> unit

  val int_ba : t -> intba -> unit
  (** Same wire format as {!int_array} (length, then 8-byte LE words):
      flattening an [int array] into a Bigarray plane is byte-invisible
      in the snapshot stream. *)

  val tag : t -> string -> unit
  (** Emit a 4-character section marker — a cheap structural check the
      reader verifies with {!R.tag}, pinning a corruption to the section
      where reader and writer diverged. *)

  val contents : t -> string
end

(** Reader: consumes the writer's output in the same order. *)
module R : sig
  type t

  val of_string : string -> t
  val int : t -> int
  val i64 : t -> int64
  val string : t -> string
  val bytes : t -> Bytes.t

  val bytes_into : t -> Bytes.t -> unit
  (** Restore into an existing buffer of exactly the recorded length —
      used for state whose identity is captured by closures (the backing
      store) and must be mutated in place, never replaced. *)

  val int_array : t -> int array
  val int_array_into : t -> int array -> unit

  val int_ba_into : t -> intba -> unit
  (** Mirror of {!W.int_ba}: restore into an existing plane of exactly
      the recorded length. *)

  val tag : t -> string -> unit
  val expect_end : t -> unit
end
