module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () = Hashtbl.create 32

  let cell t name =
    match Hashtbl.find_opt t name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

  let add t name n = cell t name := !(cell t name) + n
  let incr t name = add t name 1
  let find t name = Option.map ( ! ) (Hashtbl.find_opt t name)
  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let merge a b =
    let out = create () in
    List.iter (fun (name, n) -> add out name n) (to_list a);
    List.iter (fun (name, n) -> add out name n) (to_list b);
    out

  let clear t = Hashtbl.reset t
  let set t name n = cell t name := n

  let restore t assoc =
    clear t;
    List.iter (fun (name, n) -> set t name n) assoc
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let percent num den = 100.0 *. ratio num den
