module Counters = struct
  type t = { tbl : (string, int ref) Hashtbl.t; mutable gen : int }

  let create () = { tbl = Hashtbl.create 32; gen = 0 }

  let cell t name =
    match Hashtbl.find_opt t.tbl name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t.tbl name r;
      r

  (* Single hash probe per bump, and no [find_opt] option box — counter
     bumps sit on the simulator's per-access path. *)
  let add t name n =
    match Hashtbl.find t.tbl name with
    | r -> r := !r + n
    | exception Not_found -> Hashtbl.add t.tbl name (ref n)

  let incr t name = add t name 1
  let find t name = Option.map ( ! ) (Hashtbl.find_opt t.tbl name)

  let get t name =
    match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let merge a b =
    let out = create () in
    List.iter (fun (name, n) -> add out name n) (to_list a);
    List.iter (fun (name, n) -> add out name n) (to_list b);
    out

  (* [clear] and [restore] detach every live cell ref, so they bump the
     generation: handles below revalidate against it before reusing a
     cached cell. *)
  let clear t =
    Hashtbl.reset t.tbl;
    t.gen <- t.gen + 1

  let set t name n = cell t name := n

  let restore t assoc =
    clear t;
    List.iter (fun (name, n) -> set t name n) assoc

  (* Pre-resolved bump site: the string hash is paid once per counter
     set (and once more after any clear/restore), not on every bump.
     Resolution happens on the first bump, never at handle creation, so
     an untouched counter still does not appear in {!to_list}. *)
  type handle = {
    h_t : t;
    h_name : string;
    mutable h_gen : int;
    mutable h_cell : int ref;
  }

  let handle t name = { h_t = t; h_name = name; h_gen = -1; h_cell = ref 0 }

  let hadd h n =
    if h.h_gen = h.h_t.gen then begin
      let r = h.h_cell in
      r := !r + n
    end
    else begin
      let r = cell h.h_t h.h_name in
      r := !r + n;
      h.h_cell <- r;
      h.h_gen <- h.h_t.gen
    end

  let hincr h = hadd h 1
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let percent num den = 100.0 *. ratio num den
