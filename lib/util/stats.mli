(** Counters and simple descriptive statistics used by the simulators and
    the experiment reporting code. *)

(** Mutable named counter set. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val find : t -> string -> int option
  (** [None] when the counter was never touched — a single hash probe,
      unlike scanning a {!to_list} snapshot. *)

  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val merge : t -> t -> t
  (** Pointwise sum; inputs are not modified. *)

  val clear : t -> unit
  val set : t -> string -> int -> unit

  val restore : t -> (string * int) list -> unit
  (** Replace the counter set's contents with [assoc] — the in-place
      inverse of {!to_list}, used when restoring a simulation snapshot
      into live state whose identity (the table itself) is captured by
      hierarchy closures. *)

  type handle
  (** A pre-resolved bump site for one counter name: the name is hashed
      on the first bump (and again after a {!clear}/{!restore}, which
      detach cells), not on every bump. Creating a handle does not
      create the counter. *)

  val handle : t -> string -> handle
  val hincr : handle -> unit
  val hadd : handle -> int -> unit
end

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0. on the empty list. All values must be positive. *)

val ratio : int -> int -> float
(** [ratio num den] is [num / den] as a float, 0. when [den = 0]. *)

val percent : int -> int -> float
(** [percent num den] is [100 * num / den], 0. when [den = 0]. *)
