(** Crash-safe append-only run journal.

    A journal is a flat file of self-delimiting binary frames, one per
    completed job of a campaign. Each frame carries a 4-byte magic, the
    payload length, an MD5 digest of the payload and the payload itself
    (a marshalled {!entry}), and every append is flushed before the
    writer returns — so a process killed mid-write can only ever leave a
    *truncated or torn tail*, never a silently corrupt prefix.

    {!load} is correspondingly tolerant: it replays frames from the
    start and stops at the first truncated frame, failed digest or
    unreadable entry, returning the intact prefix. A campaign resumed
    after a SIGKILL therefore re-runs at most the one job whose frame
    was torn, plus whatever had not been journalled yet.

    The journal records {e facts about jobs} (id, per-job seed, attempt
    count, outcome) with the job's marshalled result as an opaque
    payload; it knows nothing about what the payload means. Payloads are
    written and read by the same binary in the same campaign
    configuration — [Marshal] gives no cross-version or cross-type
    safety, so a resume against a journal produced by different code or
    different campaign parameters is undefined (the runner documents
    this; use a fresh run id when parameters change). *)

(** Terminal status of a journalled job. *)
type status =
  | Done  (** the payload is the job's marshalled result *)
  | Skipped of string
      (** the job exhausted its retries; the string is the last failure
          reason and the payload is empty *)

type entry = {
  e_job : string;  (** stable job id, unique within a campaign *)
  e_seed : int;  (** the per-job seed the runner derived for it *)
  e_attempts : int;  (** attempts consumed (1 = first try succeeded) *)
  e_status : status;
  e_payload : string;  (** marshalled result; [""] for [Skipped] *)
}

val payload_digest : entry -> string
(** Hex MD5 of the entry's payload — the digest stored in its frame. *)

(** {1 Frames}

    The codec is {!Frame} — one implementation shared with the runner's
    worker-to-supervisor pipes (the same torn-write tolerance applies to
    a worker SIGKILLed mid-result) and the serve protocol. These two are
    kept as aliases for the journal's historical API. *)

val encode_frame : string -> string
(** {!Frame.encode}: [magic ^ length ^ md5 ^ payload], self-delimiting. *)

val decode_frame : string -> pos:int -> (string * int) option
(** {!Frame.decode}: the payload starting at [pos] and the position one
    past the frame, or [None] when the data at [pos] is truncated, has a
    wrong magic, or fails its digest. *)

(** {1 Writing} *)

type writer

val open_writer : ?append:bool -> string -> writer
(** Opens (creating parent-less) the journal at a path. [append]
    defaults to [false], truncating any previous journal; pass [true]
    when resuming. *)

val append : writer -> entry -> unit
(** Appends one frame and flushes. *)

val close : writer -> unit

(** {1 Reading}

    Two replay modes. The default, {!Stop_at_first_defect}, treats the
    journal as an append-only log whose only legal damage is a torn
    tail: replay stops at the first defect and returns the intact
    prefix. {!Resync} is the mode the serve {!Store} pioneered for
    files that may suffer mid-file corruption (bit rot, a overwritten
    sector): a damaged record is dropped and the scan hunts for the
    next frame magic, so one flipped byte costs one record rather than
    everything after it. Resync is opt-in because it can silently skip
    records — a resumed campaign would re-run those jobs, which is
    safe but surprising, so callers must ask for it. *)

(** One defect found during replay, with its byte offset. *)
type defect =
  | Torn_tail of { pos : int }
      (** frame truncated by end-of-file — the normal crash signature *)
  | Corrupt_frame of { pos : int }
      (** bad magic or failed digest *)
  | Oversized_frame of { pos : int; claimed : int }
      (** intact magic but a length field above {!Frame.max_payload};
          surfaced as a typed defect, never as an allocation attempt *)
  | Unreadable_entry of { pos : int }
      (** digest-intact frame whose payload fails to unmarshal *)

type replay = Stop_at_first_defect | Resync

val defect_message : defect -> string
(** Human-readable one-liner for logs and CLI diagnostics. *)

val load : ?replay:replay -> string -> entry list
(** All intact entries in append order. With the default
    [Stop_at_first_defect], stops at the first truncated or corrupt
    frame and returns the intact prefix; with [Resync], skips damaged
    records and continues from the next frame boundary. Returns [[]]
    when the file is missing or empty. *)

val load_report : ?replay:replay -> string -> entry list * defect list
(** Like {!load} but also reports every defect encountered (at most
    one under [Stop_at_first_defect]). *)

val load_frames : ?replay:replay -> string -> string list * defect list
(** Raw intact frame payloads without interpreting them as entries —
    for callers (checkpoint files) that frame non-[entry] payloads
    with the same codec and want the same replay semantics. *)
