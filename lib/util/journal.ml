type status = Done | Skipped of string

type entry = {
  e_job : string;
  e_seed : int;
  e_attempts : int;
  e_status : status;
  e_payload : string;
}

let payload_digest e = Digest.to_hex (Digest.string e.e_payload)

(* The frame codec itself lives in {!Frame} — one implementation shared
   with the runner's result pipes and the serve protocol. *)

let encode_frame = Frame.encode
let decode_frame = Frame.decode

type writer = { oc : out_channel }

let open_writer ?(append = false) path =
  let flags =
    Open_wronly :: Open_creat :: Open_binary
    :: (if append then [ Open_append ] else [ Open_trunc ])
  in
  { oc = open_out_gen flags 0o644 path }

let append w entry =
  output_string w.oc (encode_frame (Marshal.to_string entry []));
  flush w.oc

let close w = close_out w.oc

(* ------------------------------------------------------------------ *)
(* Replay *)

type defect =
  | Torn_tail of { pos : int }
  | Corrupt_frame of { pos : int }
  | Oversized_frame of { pos : int; claimed : int }
  | Unreadable_entry of { pos : int }

type replay = Stop_at_first_defect | Resync

let defect_message = function
  | Torn_tail { pos } ->
    Printf.sprintf "torn frame at offset %d (incomplete tail)" pos
  | Corrupt_frame { pos } ->
    Printf.sprintf "corrupt frame at offset %d (bad magic or digest)" pos
  | Oversized_frame { pos; claimed } ->
    Printf.sprintf
      "frame at offset %d claims %d payload bytes, above the %d-byte limit"
      pos claimed Frame.max_payload
  | Unreadable_entry { pos } ->
    Printf.sprintf "frame at offset %d holds an unreadable entry" pos

(* Next candidate frame start strictly after [pos] — the resynchronizing
   scan the serve {!Store} uses, so one flipped byte costs one record,
   not every record after it. *)
let next_magic text pos =
  let n = String.length text in
  let m = String.length Frame.magic in
  let rec go p =
    if p + m > n then None
    else if String.sub text p m = Frame.magic then Some p
    else go (p + 1)
  in
  go pos

(* Classify a defect at [pos]. {!Frame.check} already refuses to treat an
   oversized length field as an allocation request (satellite: the limit
   is enforced before any buffer is sized); here we additionally surface
   *which* kind of corruption it was as a typed defect. *)
let classify_defect text pos =
  if pos + 8 <= String.length text then begin
    let claimed =
      (Char.code text.[pos + 4] lsl 24)
      lor (Char.code text.[pos + 5] lsl 16)
      lor (Char.code text.[pos + 6] lsl 8)
      lor Char.code text.[pos + 7]
    in
    if
      String.sub text pos 4 = Frame.magic
      && (claimed < 0 || claimed > Frame.max_payload)
    then Oversized_frame { pos; claimed }
    else Corrupt_frame { pos }
  end
  else Corrupt_frame { pos }

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | text -> Some text

let scan_frames ~replay text =
  let frames = ref [] and defects = ref [] in
  let rec go pos =
    if pos < String.length text then begin
      match Frame.check text ~pos with
      | Frame.Frame (payload, next) ->
        frames := (pos, payload) :: !frames;
        go next
      | Frame.Partial -> resync pos (Torn_tail { pos })
      | Frame.Corrupt _ -> resync pos (classify_defect text pos)
    end
  and resync pos defect =
    defects := defect :: !defects;
    match replay with
    | Stop_at_first_defect -> ()
    | Resync -> (
      (* Drop the damaged record, rescan for the next frame boundary. *)
      match next_magic text (pos + 1) with None -> () | Some p -> go p)
  in
  go 0;
  (List.rev !frames, List.rev !defects)

let load_frames ?(replay = Stop_at_first_defect) path =
  match read_file path with
  | None -> ([], [])
  | Some text ->
    let frames, defects = scan_frames ~replay text in
    (List.map snd frames, defects)

let load_report ?(replay = Stop_at_first_defect) path =
  match read_file path with
  | None -> ([], [])
  | Some text ->
    let frames, frame_defects = scan_frames ~replay text in
    let entries = ref [] and bad_entries = ref [] in
    (try
       List.iter
         (fun (pos, payload) ->
           (* A digest-intact frame whose payload still fails to unmarshal
              (e.g. written by an incompatible binary) is a defect like any
              other: fatal by default, skipped under [Resync]. *)
           match (Marshal.from_string payload 0 : entry) with
           | entry -> entries := entry :: !entries
           | exception _ ->
             bad_entries := Unreadable_entry { pos } :: !bad_entries;
             (match replay with
             | Stop_at_first_defect -> raise Exit
             | Resync -> ()))
         frames
     with Exit -> ());
    (List.rev !entries, frame_defects @ List.rev !bad_entries)

let load ?replay path = fst (load_report ?replay path)
