type status = Done | Skipped of string

type entry = {
  e_job : string;
  e_seed : int;
  e_attempts : int;
  e_status : status;
  e_payload : string;
}

let payload_digest e = Digest.to_hex (Digest.string e.e_payload)

(* Frame layout: 4-byte magic, 4-byte big-endian payload length, 16-byte
   raw MD5 of the payload, payload. Everything needed to detect a torn
   tail is in front of the payload, so [decode_frame] never reads past
   what the writer managed to flush. *)

let magic = "FLJ1"
let header_bytes = 4 + 4 + 16

let encode_frame payload =
  let len = String.length payload in
  let b = Buffer.create (header_bytes + len) in
  Buffer.add_string b magic;
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let decode_frame s ~pos =
  if pos < 0 || String.length s - pos < header_bytes then None
  else if String.sub s pos 4 <> magic then None
  else
    let len = Int32.to_int (String.get_int32_be s (pos + 4)) in
    if len < 0 || String.length s - pos - header_bytes < len then None
    else
      let digest = String.sub s (pos + 8) 16 in
      let payload = String.sub s (pos + header_bytes) len in
      if Digest.string payload <> digest then None
      else Some (payload, pos + header_bytes + len)

type writer = { oc : out_channel }

let open_writer ?(append = false) path =
  let flags =
    Open_wronly :: Open_creat :: Open_binary
    :: (if append then [ Open_append ] else [ Open_trunc ])
  in
  { oc = open_out_gen flags 0o644 path }

let append w entry =
  output_string w.oc (encode_frame (Marshal.to_string entry []));
  flush w.oc

let close w = close_out w.oc

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> []
  | text ->
    let rec go acc pos =
      match decode_frame text ~pos with
      | None -> List.rev acc
      | Some (payload, next) -> (
        (* A digest-intact frame whose payload still fails to unmarshal
           (e.g. written by an incompatible binary) ends the replay the
           same way a torn tail does. *)
        match (Marshal.from_string payload 0 : entry) with
        | entry -> go (entry :: acc) next
        | exception _ -> List.rev acc)
    in
    go [] 0
