type status = Done | Skipped of string

type entry = {
  e_job : string;
  e_seed : int;
  e_attempts : int;
  e_status : status;
  e_payload : string;
}

let payload_digest e = Digest.to_hex (Digest.string e.e_payload)

(* The frame codec itself lives in {!Frame} — one implementation shared
   with the runner's result pipes and the serve protocol. The journal
   only needs the coarse decode: any defect ends the intact prefix. *)

let encode_frame = Frame.encode
let decode_frame = Frame.decode

type writer = { oc : out_channel }

let open_writer ?(append = false) path =
  let flags =
    Open_wronly :: Open_creat :: Open_binary
    :: (if append then [ Open_append ] else [ Open_trunc ])
  in
  { oc = open_out_gen flags 0o644 path }

let append w entry =
  output_string w.oc (encode_frame (Marshal.to_string entry []));
  flush w.oc

let close w = close_out w.oc

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> []
  | text ->
    let rec go acc pos =
      match decode_frame text ~pos with
      | None -> List.rev acc
      | Some (payload, next) -> (
        (* A digest-intact frame whose payload still fails to unmarshal
           (e.g. written by an incompatible binary) ends the replay the
           same way a torn tail does. *)
        match (Marshal.from_string payload 0 : entry) with
        | entry -> go (entry :: acc) next
        | exception _ -> List.rev acc)
    in
    go [] 0
