type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* splitmix64 step: monotone counter + finalizer, period 2^64. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let keyed ~seed key =
  (* FNV-1a (64-bit) over the key, seeded: the keyed analogue of [split].
     The hash only picks the starting point of a splitmix64 stream, so
     its quality requirements are mild; splitmix's finalizer (applied by
     the [split] below) does the real mixing. *)
  let h = ref (Int64.logxor (Int64.of_int seed) 0xCBF29CE484222325L) in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001B3L)
    key;
  split { state = !h }

let int t bound =
  if bound <= 0 then
    invalid_arg (Printf.sprintf "Rng.int: bound must be positive, got %d" bound);
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted_pick t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if not (total > 0.0) then
    invalid_arg
      (Printf.sprintf "Rng.weighted_pick: total weight must be positive, got %g"
         total);
  let target = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted_pick: empty choice list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else go (acc +. w) rest
  in
  go 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let state t = t.state
let set_state t s = t.state <- s
