(** Optimality audit (PR 10): heuristic II vs the exact backend's
    certified optimum, across every Mediabench inner loop and a
    deterministic fuzz corpus, under the three distributed schemes the
    paper compares.

    Each (loop, scheme) pair is one supervised {!Runner} job: the
    heuristic schedules it, {!Flexl0_sched.Exact} searches it with a
    node budget, and — whenever the exact backend produces a schedule —
    the static validator, the differential value verifier and the Strict
    sanitizer all certify it. A complaint from any of those oracles on
    an exact schedule is a {e model bug} (the solver claimed legality
    the machine model rejects), reported verbatim in the row.

    The per-row MII breakdown (ResMII vs RecMII and the binding
    resource class, under the exact backend's optimistic latency model)
    attributes every optimality gap: a recurrence-bound loop the
    heuristic misses is a scheduling deficiency; a resource-bound one
    may simply be saturated. *)

type row = {
  a_source : string;  (** ["mediabench"] or ["fuzz"] *)
  a_loop : string;  (** [bench/loop] or [fuzz-seed-index] *)
  a_scheme : string;
  a_res_mii : int;
  a_rec_mii : int;
  a_binding : string;  (** {!Flexl0_sched.Mii.binding_to_string} *)
  a_lower : int;  (** the exact backend's certified lower bound *)
  a_heuristic_ii : int option;  (** [None]: heuristic infeasible *)
  a_exact_ii : int option;  (** [None]: no witness within budget *)
  a_verdict : string;  (** {!Flexl0_sched.Exact.verdict_to_string} *)
  a_nodes : int;
  a_gap : int option;  (** heuristic II - exact II, when both exist *)
  a_failures : string list;  (** oracle complaints — model bugs *)
}

type summary = {
  s_rows : row list;  (** deterministic order: subjects x schemes *)
  s_total : int;
  s_optimal : int;  (** rows whose verdict is [optimal] *)
  s_gapped : int;  (** rows with a strictly positive gap *)
  s_max_gap : int;
  s_gap_sum : int;  (** sum of the positive gaps *)
  s_model_bugs : int;  (** rows with oracle complaints *)
  s_skipped : Runner.skip list;  (** jobs that gave up under the runner *)
}

val schemes : Flexl0_sched.Scheme.t list
(** The audited schemes: selective L0, MultiVLIW, locality-aware
    interleaved. *)

val audit_one :
  budget:int ->
  source:string ->
  label:string ->
  Flexl0_ir.Loop.t ->
  Flexl0_sched.Scheme.t ->
  row
(** One cell of the matrix, in-process. *)

val run :
  ?budget:int ->
  ?benchmarks:string list ->
  ?fuzz_seed:int ->
  ?fuzz_cases:int ->
  runner:Runner.config ->
  unit ->
  summary
(** The full campaign under the supervised parallel runner — forked,
    timed-out, retried, journaled for [--resume]. [benchmarks] filters
    the Mediabench suites; [fuzz_cases] (default 12, seed 42) sizes the
    deterministic fuzz corpus; [budget] is the per-II node budget handed
    to {!Flexl0_sched.Exact.solve}. A job that gives up lands in
    [s_skipped], not in the rows. *)

val run_seq :
  ?budget:int ->
  ?benchmarks:string list ->
  ?fuzz_seed:int ->
  ?fuzz_cases:int ->
  unit ->
  summary
(** {!run} without the runner: sequential and in-process, for tests and
    benches. Row order is identical to {!run}'s. *)

val csv_header : string list

val to_csv : summary -> string
(** The audit as CSV ({!Csv_export.record} formatting), one row per
    (loop, scheme) cell, gaps and the MII split as columns. *)

val gap_figure : summary -> string
(** The plottable companion of {!to_csv}:
    [scheme,loop,heuristic_ii,exact_ii,gap], one record per cell both
    backends scheduled — the data behind a heuristic-vs-optimal bar
    chart, grouped by scheme. *)

val passed : summary -> bool
(** The PR 10 acceptance gate: no model bugs, no given-up jobs, and at
    least 90% of the cells resolved [optimal] within budget. *)
