module Journal = Flexl0_util.Journal
module Frame = Flexl0_util.Frame
module Rng = Flexl0_util.Rng

(* Checkpoint channel handed to a job's work. Backed by a per-job file
   under the journal dir when one is configured, inert otherwise — jobs
   write through it unconditionally and stay oblivious to whether
   persistence is on. *)
type ckpt = { ck_save : string -> unit; ck_load : unit -> string option }

let null_ckpt = { ck_save = ignore; ck_load = (fun () -> None) }

type 'a job = { id : string; work : ckpt:ckpt -> seed:int -> 'a }

let job ~id work = { id; work = (fun ~ckpt:_ ~seed -> work ~seed) }
let job_ckpt ~id work = { id; work }

type skip = {
  sk_job : string;
  sk_seed : int;
  sk_attempts : int;
  sk_reason : string;
}

type 'a outcome = Done of 'a | Gave_up of skip

let skip_message sk =
  Printf.sprintf "job %s gave up after %d attempt%s: %s" sk.sk_job
    sk.sk_attempts
    (if sk.sk_attempts = 1 then "" else "s")
    sk.sk_reason

type progress =
  | Job_started of { job : string; attempt : int }
  | Job_resumed of { job : string; attempt : int }
  | Job_done of string
  | Job_cached of string
  | Job_retry of { job : string; attempt : int; delay : float; reason : string }
  | Job_gave_up of skip

type config = {
  jobs : int;
  timeout : float option;
  retries : int;
  backoff_base : float;
  backoff_max : float;
  seed : int;
  journal_dir : string option;
  resume : bool;
  resync_journal : bool;
  on_progress : progress -> unit;
}

let default =
  {
    jobs = 1;
    timeout = None;
    retries = 2;
    backoff_base = 0.5;
    backoff_max = 30.0;
    seed = 0;
    journal_dir = None;
    resume = false;
    resync_journal = false;
    on_progress = ignore;
  }

let job_seed ~seed id = Rng.int (Rng.keyed ~seed id) 0x3FFFFFFF

let backoff_delay ~base ~max_delay ~jitter ~attempt =
  if base <= 0.0 then 0.0
  else
    let attempt = max 1 attempt in
    let raw = base *. (2.0 ** float_of_int (attempt - 1)) in
    let capped = min raw (max max_delay base) in
    let jitter = min (max jitter 0.0) 0.999_999 in
    capped *. (1.0 +. (0.5 *. jitter))

(* ------------------------------------------------------------------ *)
(* Worker protocol: the child runs the job and writes exactly one
   journal-style frame — Marshal of (Ok result | Error reason) — on its
   pipe, then _exits without running at_exit handlers (no double
   flushing of inherited channels). The parent treats anything short of
   one intact frame (killed worker, torn write, marshal failure) as an
   attempt failure. *)
(* ------------------------------------------------------------------ *)

type 'a wire = W_ok of 'a | W_exn of string

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let child_main fd work =
  (try
     let wire =
       match work () with
       | v -> W_ok v
       | exception e -> W_exn (Printexc.to_string e)
     in
     write_all fd (Frame.encode (Marshal.to_string wire []))
   with _ -> ());
  (try Unix.close fd with _ -> ());
  Unix._exit 0

(* Exposed worker primitives: the serve daemon runs the same
   fork-one-frame-exit protocol, but supervises workers from its own
   socket select loop instead of [run]'s batch loop. *)

let fork_worker work =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close rd;
    child_main wr work
  | pid ->
    Unix.close wr;
    (pid, rd)

let read_result data =
  match Frame.decode data ~pos:0 with
  | Some (payload, _) -> (
    match (Marshal.from_string payload 0 : 'a wire) with
    | W_ok v -> Ok v
    | W_exn msg -> Error msg
    | exception _ -> Error "worker result failed to unmarshal")
  | None -> Error "worker exited before producing an intact result frame"

(* One in-flight worker. *)
type running = {
  r_idx : int;
  r_attempt : int;
  r_pid : int;
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_deadline : float option;
}

let status_reason = function
  | Unix.WEXITED 0 -> "worker exited before producing a result"
  | Unix.WEXITED n -> Printf.sprintf "worker exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Per-job checkpoint files: [<journal_dir>/ckpt.<id>-<digest8>]. A
   worker appends Frame-encoded snapshots as it runs; on a retry (or a
   [--resume] restart) the fresh attempt reads the last intact frame
   back and continues mid-job instead of from scratch. The digest suffix
   keeps sanitized ids collision-free. *)

let ckpt_prefix = "ckpt."

let ckpt_filename id =
  let sane =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_') as c -> c | _ -> '_')
      id
  in
  Printf.sprintf "%s%s-%s" ckpt_prefix sane
    (String.sub (Digest.to_hex (Digest.string id)) 0 8)

let ckpt_save path payload =
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_append; Open_binary ]
      0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Frame.encode payload);
      flush oc)

(* Last intact frame wins; the resynchronizing scan survives both a torn
   tail (killed mid-append) and a corrupted frame in the middle. *)
let ckpt_load path () =
  match Journal.load_frames ~replay:Journal.Resync path with
  | [], _ -> None
  | frames, _ -> Some (List.nth frames (List.length frames - 1))

let file_ckpt path = { ck_save = ckpt_save path; ck_load = ckpt_load path }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let remove_stale_ckpts dir =
  match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun f ->
        if starts_with ~prefix:ckpt_prefix f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries
  | exception Sys_error _ -> ()

let validate cfg jobs =
  if cfg.jobs < 1 then
    invalid_arg
      (Printf.sprintf "Runner.run: jobs must be >= 1, got %d" cfg.jobs);
  if cfg.retries < 0 then
    invalid_arg
      (Printf.sprintf "Runner.run: retries must be >= 0, got %d" cfg.retries);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun j ->
      if Hashtbl.mem seen j.id then
        invalid_arg ("Runner.run: duplicate job id " ^ j.id);
      Hashtbl.add seen j.id ())
    jobs

let run (cfg : config) (jobs : 'a job list) : 'a outcome list =
  validate cfg jobs;
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results : 'a outcome option array = Array.make n None in
  (* Resume: satisfy jobs from intact journal entries before running
     anything. Later entries win (a re-run job supersedes its past). *)
  let ckpt_path id =
    Option.map (fun dir -> Filename.concat dir (ckpt_filename id)) cfg.journal_dir
  in
  let remove_ckpt id =
    match ckpt_path id with
    | Some p when Sys.file_exists p -> (
      try Sys.remove p with Sys_error _ -> ())
    | _ -> ()
  in
  let writer =
    match cfg.journal_dir with
    | None -> None
    | Some dir ->
      mkdir_p dir;
      let path = Filename.concat dir "journal" in
      if cfg.resume then begin
        let replay =
          if cfg.resync_journal then Journal.Resync
          else Journal.Stop_at_first_defect
        in
        let by_id = Hashtbl.create 64 in
        List.iter
          (fun (e : Journal.entry) -> Hashtbl.replace by_id e.Journal.e_job e)
          (Journal.load ~replay path);
        Array.iteri
          (fun i j ->
            match Hashtbl.find_opt by_id j.id with
            | None -> ()
            | Some e ->
              (match e.Journal.e_status with
              | Journal.Done -> (
                match (Marshal.from_string e.Journal.e_payload 0 : 'a) with
                | v ->
                  results.(i) <- Some (Done v);
                  remove_ckpt j.id;
                  cfg.on_progress (Job_cached j.id)
                | exception _ -> () (* unreadable payload: re-run *))
              | Journal.Skipped reason ->
                results.(i) <-
                  Some
                    (Gave_up
                       {
                         sk_job = j.id;
                         sk_seed = e.Journal.e_seed;
                         sk_attempts = e.Journal.e_attempts;
                         sk_reason = reason;
                       });
                remove_ckpt j.id;
                cfg.on_progress (Job_cached j.id)))
          jobs
      end
      else
        (* A fresh (non-resume) campaign must not inherit mid-job state
           from a previous one under the same journal dir. *)
        remove_stale_ckpts dir;
      Some (Journal.open_writer ~append:cfg.resume path)
  in
  let journal idx attempts status payload =
    match writer with
    | None -> ()
    | Some w ->
      Journal.append w
        {
          Journal.e_job = jobs.(idx).id;
          e_seed = job_seed ~seed:cfg.seed jobs.(idx).id;
          e_attempts = attempts;
          e_status = status;
          e_payload = payload;
        }
  in
  let now () = Unix.gettimeofday () in
  let pending = Queue.create () in
  Array.iteri (fun i _ -> if results.(i) = None then Queue.add (i, 1) pending) jobs;
  let delayed = ref [] (* (wake_time, idx, attempt) *) in
  let running = ref [] in
  let complete idx ~attempts outcome ~payload =
    results.(idx) <- Some outcome;
    (match outcome with
    | Done _ ->
      journal idx attempts Journal.Done payload;
      remove_ckpt jobs.(idx).id;
      cfg.on_progress (Job_done jobs.(idx).id)
    | Gave_up sk ->
      journal idx attempts (Journal.Skipped sk.sk_reason) "";
      remove_ckpt jobs.(idx).id;
      cfg.on_progress (Job_gave_up sk))
  in
  let attempt_failed idx ~attempt reason =
    if attempt > cfg.retries then
      complete idx ~attempts:attempt ~payload:""
        (Gave_up
           {
             sk_job = jobs.(idx).id;
             sk_seed = job_seed ~seed:cfg.seed jobs.(idx).id;
             sk_attempts = attempt;
             sk_reason = reason;
           })
    else begin
      let jitter =
        Rng.float
          (Rng.keyed ~seed:cfg.seed
             (Printf.sprintf "%s#retry%d" jobs.(idx).id attempt))
          1.0
      in
      let delay =
        backoff_delay ~base:cfg.backoff_base ~max_delay:cfg.backoff_max
          ~jitter ~attempt
      in
      cfg.on_progress
        (Job_retry { job = jobs.(idx).id; attempt; delay; reason });
      delayed := (now () +. delay, idx, attempt + 1) :: !delayed
    end
  in
  let spawn idx attempt =
    let job = jobs.(idx) in
    let seed = job_seed ~seed:cfg.seed job.id in
    let ckpt =
      match ckpt_path job.id with Some p -> file_ckpt p | None -> null_ckpt
    in
    cfg.on_progress (Job_started { job = job.id; attempt });
    (* A checkpoint file on disk at spawn time means a previous attempt
       (or a previous campaign under [--resume]) saved mid-job state the
       worker can pick up. Whether it actually does is the job's call —
       an incompatible snapshot falls back to a fresh start. *)
    (match ckpt_path job.id with
    | Some p when Sys.file_exists p ->
      cfg.on_progress (Job_resumed { job = job.id; attempt })
    | _ -> ());
    let pid, rd = fork_worker (fun () -> job.work ~ckpt ~seed) in
    running :=
        {
          r_idx = idx;
          r_attempt = attempt;
          r_pid = pid;
          r_fd = rd;
          r_buf = Buffer.create 4096;
          r_deadline = Option.map (fun t -> now () +. t) cfg.timeout;
        }
        :: !running
  in
  let reap (r : running) =
    (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
    let status = waitpid_retry r.r_pid in
    running := List.filter (fun x -> x.r_pid <> r.r_pid) !running;
    let data = Buffer.contents r.r_buf in
    match Frame.decode data ~pos:0 with
    | Some (payload, _) -> (
      match (Marshal.from_string payload 0 : 'a wire) with
      | W_ok v ->
        (* Journal the bare ['a] (not the wire wrapper) so a resume can
           unmarshal the payload directly at the job's result type. *)
        complete r.r_idx ~attempts:r.r_attempt (Done v)
          ~payload:(Marshal.to_string v [])
      | W_exn msg -> attempt_failed r.r_idx ~attempt:r.r_attempt msg
      | exception _ ->
        attempt_failed r.r_idx ~attempt:r.r_attempt
          "worker result failed to unmarshal")
    | None -> attempt_failed r.r_idx ~attempt:r.r_attempt (status_reason status)
  in
  let kill_timed_out (r : running) =
    (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try Unix.close r.r_fd with Unix.Unix_error _ -> ());
    ignore (waitpid_retry r.r_pid);
    running := List.filter (fun x -> x.r_pid <> r.r_pid) !running;
    attempt_failed r.r_idx ~attempt:r.r_attempt
      (Printf.sprintf "timed out after %gs wall clock"
         (Option.value ~default:0.0 cfg.timeout))
  in
  let chunk = Bytes.create 65536 in
  let all_done () = Array.for_all (fun r -> r <> None) results in
  while not (all_done ()) do
    (* Promote retries whose backoff has elapsed. *)
    let t = now () in
    let ripe, still = List.partition (fun (w, _, _) -> w <= t) !delayed in
    delayed := still;
    List.iter (fun (_, i, a) -> Queue.add (i, a) pending) ripe;
    (* Fill free worker slots. *)
    while List.length !running < cfg.jobs && not (Queue.is_empty pending) do
      let i, a = Queue.pop pending in
      spawn i a
    done;
    if !running = [] then begin
      (* Nothing in flight: only backoff delays remain. Sleep to the
         earliest wake-up instead of spinning. *)
      match !delayed with
      | [] -> () (* all_done will be true *)
      | l ->
        let wake = List.fold_left (fun acc (w, _, _) -> min acc w) infinity l in
        let d = wake -. now () in
        if d > 0.0 then Unix.sleepf (min d 1.0)
    end
    else begin
      (* Wait for worker output, the nearest deadline or the nearest
         backoff wake-up, whichever comes first. *)
      let horizon =
        List.fold_left
          (fun acc (r : running) ->
            match r.r_deadline with Some d -> min acc d | None -> acc)
          infinity !running
      in
      let horizon =
        List.fold_left (fun acc (w, _, _) -> min acc w) horizon !delayed
      in
      let timeout =
        if horizon = infinity then 0.5
        else min 0.5 (max 0.0 (horizon -. now ()))
      in
      let fds = List.map (fun r -> r.r_fd) !running in
      let readable =
        match Unix.select fds [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          match List.find_opt (fun r -> r.r_fd = fd) !running with
          | None -> ()
          | Some r -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> reap r (* EOF: worker finished or died *)
            | k -> Buffer.add_subbytes r.r_buf chunk 0 k
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        readable;
      (* Enforce wall-clock deadlines. *)
      let t = now () in
      List.iter
        (fun r ->
          match r.r_deadline with
          | Some d when t > d -> kill_timed_out r
          | _ -> ())
        !running
    end
  done;
  (match writer with Some w -> Journal.close w | None -> ());
  Array.to_list (Array.map Option.get results)
