let print_figure (fig : Experiments.figure) =
  Printf.printf "\n%s\n" fig.Experiments.title;
  Printf.printf "%-10s" "bench";
  List.iter (Printf.printf " | %-22s") fig.Experiments.point_labels;
  print_newline ();
  let dashes n = String.make n '-' in
  Printf.printf "%s\n"
    (String.concat "-+-"
       (dashes 10 :: List.map (fun _ -> dashes 22) fig.Experiments.point_labels));
  let print_row bench points =
    Printf.printf "%-10s" bench;
    List.iter
      (fun (p : Experiments.norm) ->
        Printf.printf " | %5.3f (stall %5.3f)   " p.Experiments.total
          p.Experiments.stall)
      points;
    print_newline ()
  in
  List.iter
    (fun (r : Experiments.row) -> print_row r.Experiments.bench r.Experiments.points)
    fig.Experiments.rows;
  print_row "AMEAN" fig.Experiments.amean;
  List.iter
    (fun (bench, reason) -> Printf.printf "!! skipped %s: %s\n" bench reason)
    fig.Experiments.skipped;
  if fig.Experiments.total_mismatches <> 0 then
    Printf.printf "!! %d coherence value mismatches\n" fig.Experiments.total_mismatches

let print_fig6 rows =
  Printf.printf
    "\nFigure 6: subblock mapping mix, L0 hit rate, average unroll factor \
     (8-entry buffers)\n";
  Printf.printf "%-10s | %-7s | %-11s | %-8s | %-6s | %-6s\n" "bench" "linear"
    "interleaved" "hit-rate" "unroll" "SEQ";
  List.iter
    (fun (r : Experiments.fig6_row) ->
      Printf.printf "%-10s | %6.1f%% | %10.1f%% | %7.1f%% | %5.2f | %5.1f%%\n"
        r.Experiments.f6_bench
        (100.0 *. r.Experiments.linear_fraction)
        (100.0 *. r.Experiments.interleaved_fraction)
        (100.0 *. r.Experiments.hit_rate)
        r.Experiments.avg_unroll
        (100.0 *. r.Experiments.seq_fraction))
    rows

let print_table1 rows =
  Printf.printf
    "\nTable 1: dynamic strided memory instructions (ours vs paper)\n";
  Printf.printf "%-10s | %-17s | %-17s\n" "bench" "ours S/SG/SO" "paper S/SG/SO";
  List.iter
    (fun (r : Experiments.table1_row) ->
      let fmt (s : Flexl0_workloads.Mediabench.stride_stats) =
        Printf.sprintf "%3.0f/%3.0f/%3.0f" s.Flexl0_workloads.Mediabench.s
          s.Flexl0_workloads.Mediabench.sg s.Flexl0_workloads.Mediabench.so
      in
      Printf.printf "%-10s | %-17s | %-17s\n" r.Experiments.t1_bench
        (fmt r.Experiments.ours)
        (match r.Experiments.paper with Some p -> fmt p | None -> "-"))
    rows

let print_extras (e : Experiments.extra) =
  Printf.printf "\nSection 5.2 extra studies\n";
  Printf.printf
    "2-entry L0 buffers, AMEAN normalized exec:          %5.3f (paper ~0.93)\n"
    e.Experiments.two_entry_amean;
  Printf.printf
    "all-candidates vs selective at 4 entries (ratio):   %5.3f (paper ~1.06)\n"
    e.Experiments.all_candidates_penalty;
  Printf.printf
    "prefetch distance 2 vs 1, epicdec (ratio):          %5.3f (paper ~0.88)\n"
    e.Experiments.prefetch2_epicdec;
  Printf.printf
    "prefetch distance 2 vs 1, rasta (ratio):            %5.3f (paper ~0.96)\n"
    e.Experiments.prefetch2_rasta

let print_config cfg =
  Printf.printf "\nTable 2: machine configuration\n%s\n"
    (Format.asprintf "%a" Flexl0_arch.Config.pp cfg)

let print_sweep ~title ~parameter points =
  Printf.printf "\n%s\n%-12s | %s\n" title parameter
    "AMEAN normalized exec (L0-8 vs matched baseline)";
  List.iter
    (fun (p : Experiments.sweep_point) ->
      Printf.printf "%12d | %5.3f\n" p.Experiments.parameter p.Experiments.amean)
    points

let print_coherence rows =
  Printf.printf
    "\nCoherence-discipline ablation (normalized exec, 8-entry L0)\n";
  Printf.printf "%-10s | %-6s | %-6s | %-6s | %-6s\n" "bench" "auto" "NL0" "1C"
    "PSR";
  List.iter
    (fun (r : Experiments.coherence_row) ->
      Printf.printf "%-10s | %5.3f | %5.3f | %5.3f | %5.3f\n"
        r.Experiments.co_bench r.Experiments.auto r.Experiments.nl0
        r.Experiments.one_cluster r.Experiments.psr)
    rows

let print_specialization rows =
  Printf.printf "\nCode specialization (Section 4.1): conservative vs aggressive\n";
  Printf.printf "%-12s | %-7s | %-7s | %s\n" "loop" "cons II" "aggr II"
    "gain cycles/invocation";
  List.iter
    (fun (r : Experiments.specialization_row) ->
      Printf.printf "%-12s | %7d | %7d | %d\n" r.Experiments.sp_loop
        r.Experiments.conservative_ii r.Experiments.aggressive_ii
        r.Experiments.gain_cycles)
    rows

let print_flush rows =
  Printf.printf
    "\nSelective inter-loop flushing (Section 4.1): needed flushes per region\n";
  Printf.printf "%-10s | %-8s | %-8s | %s\n" "bench" "points" "needed" "saved";
  List.iter
    (fun (r : Experiments.flush_row) ->
      Printf.printf "%-10s | %8d | %8d | %.0f%%\n" r.Experiments.fl_bench
        r.Experiments.total_flush_points r.Experiments.flushes_needed
        (100.0
        *. float_of_int (r.Experiments.total_flush_points - r.Experiments.flushes_needed)
        /. float_of_int (max 1 r.Experiments.total_flush_points)))
    rows

let print_steering rows =
  Printf.printf
    "\nStream-steering ablation (unrolled good-stride loops, 8-entry L0)\n";
  Printf.printf "%-14s | %-12s | %-12s | %-11s | %s\n" "loop" "cycles(on)"
    "cycles(off)" "ilv-subblks" "ilv-subblks(off)";
  List.iter
    (fun (r : Experiments.steering_row) ->
      Printf.printf "%-14s | %12d | %12d | %11d | %d\n" r.Experiments.st_loop
        r.Experiments.with_steering_cycles r.Experiments.without_steering_cycles
        r.Experiments.with_interleaved r.Experiments.without_interleaved)
    rows

(* Optimality audit (PR 10): per-scheme aggregate plus the gap rows. *)
let print_audit (s : Audit.summary) =
  Printf.printf "\nOptimality audit: heuristic II vs exact backend\n";
  Printf.printf "%-14s | %5s | %7s | %6s | %7s | %7s | %s\n" "scheme" "cells"
    "optimal" "gapped" "max-gap" "nodes" "model-bugs";
  let schemes =
    List.sort_uniq compare
      (List.map (fun (r : Audit.row) -> r.Audit.a_scheme) s.Audit.s_rows)
  in
  List.iter
    (fun scheme ->
      let rows =
        List.filter
          (fun (r : Audit.row) -> r.Audit.a_scheme = scheme)
          s.Audit.s_rows
      in
      let count p = List.length (List.filter p rows) in
      let gaps = List.filter_map (fun (r : Audit.row) -> r.Audit.a_gap) rows in
      Printf.printf "%-14s | %5d | %7d | %6d | %7d | %7d | %d\n" scheme
        (List.length rows)
        (count (fun r -> r.Audit.a_verdict = "optimal"))
        (List.length (List.filter (fun g -> g > 0) gaps))
        (List.fold_left max 0 gaps)
        (List.fold_left (fun a (r : Audit.row) -> a + r.Audit.a_nodes) 0 rows)
        (count (fun r -> r.Audit.a_failures <> [])))
    schemes;
  let gapped =
    List.filter
      (fun (r : Audit.row) ->
        match r.Audit.a_gap with Some g -> g > 0 | None -> false)
      s.Audit.s_rows
  in
  if gapped <> [] then begin
    Printf.printf "\nHeuristic left cycles on the table:\n";
    List.iter
      (fun (r : Audit.row) ->
        Printf.printf
          "  %-28s %-14s II %s -> %s (lower %d, res=%d rec=%d bound=%s, %s)\n"
          r.Audit.a_loop r.Audit.a_scheme
          (match r.Audit.a_heuristic_ii with
          | Some i -> string_of_int i
          | None -> "-")
          (match r.Audit.a_exact_ii with
          | Some i -> string_of_int i
          | None -> "-")
          r.Audit.a_lower r.Audit.a_res_mii r.Audit.a_rec_mii
          r.Audit.a_binding r.Audit.a_verdict)
      gapped
  end;
  List.iter
    (fun (r : Audit.row) ->
      List.iter
        (fun msg ->
          Printf.printf "MODEL BUG %s (%s): %s\n" r.Audit.a_loop
            r.Audit.a_scheme msg)
        r.Audit.a_failures)
    s.Audit.s_rows;
  List.iter
    (fun sk -> Printf.printf "SKIPPED %s\n" (Runner.skip_message sk))
    s.Audit.s_skipped;
  Printf.printf
    "\naudit: %d cells, %d optimal (%.0f%%), %d with gaps (sum %d, max %d), \
     %d model bugs, %d skipped -> %s\n"
    s.Audit.s_total s.Audit.s_optimal
    (100.0 *. float_of_int s.Audit.s_optimal
    /. float_of_int (max 1 s.Audit.s_total))
    s.Audit.s_gapped s.Audit.s_gap_sum s.Audit.s_max_gap s.Audit.s_model_bugs
    (List.length s.Audit.s_skipped)
    (if Audit.passed s then "PASS" else "FAIL")
