(** End-to-end pipeline: compile a loop for a *system* (scheme + machine
    configuration + hierarchy model) and execute it; run whole synthetic
    benchmarks and aggregate. *)

open Flexl0_ir
open Flexl0_sched
open Flexl0_workloads

type system = {
  label : string;
  config : Flexl0_arch.Config.t;
  scheme : Scheme.t;
  coherence : Engine.coherence_mode;
  max_ii : int;  (** II search ceiling handed to the scheduler *)
  backend : Engine.backend;  (** heuristic SMS or the exact solver *)
  make_hierarchy :
    Flexl0_arch.Config.t -> backing:Flexl0_mem.Backing.t ->
    Flexl0_mem.Hierarchy.t;
}

val default_max_ii : int
(** 256 — the historical scheduler default. *)

val baseline_system :
  ?config:Flexl0_arch.Config.t -> ?max_ii:int ->
  ?backend:Engine.backend -> unit -> system
(** Unified L1, no L0 buffers — the normalization reference. Every
    constructor takes [?backend] (default [Heuristic]); an [Exact]
    system compiles through {!Flexl0_sched.Exact} and simulates the
    provably minimal-II schedule. *)

val l0_system :
  ?config:Flexl0_arch.Config.t ->
  ?capacity:Flexl0_arch.Config.l0_capacity ->
  ?selective:bool ->
  ?prefetch_distance:int ->
  ?coherence:Engine.coherence_mode ->
  ?max_ii:int ->
  ?backend:Engine.backend ->
  unit ->
  system
(** The proposed architecture; defaults to 8 entries, selective marking,
    prefetch distance 1, automatic (1C-else-NL0) coherence. *)

val multivliw_system :
  ?config:Flexl0_arch.Config.t -> ?max_ii:int ->
  ?backend:Engine.backend -> unit -> system

val interleaved_system :
  ?config:Flexl0_arch.Config.t -> ?max_ii:int ->
  ?backend:Engine.backend -> locality:bool -> unit -> system
(** [locality:false] is "Interleaved 1", [true] is "Interleaved 2". *)

val compile : system -> Loop.t -> Schedule.t
(** Unroll choice + scheduling + (for L0 systems) hints and prefetches.
    Raises {!Flexl0_sched.Engine.Infeasible} past the system's [max_ii]. *)

val compile_result :
  system -> Loop.t -> (Schedule.t, Flexl0_sched.Engine.infeasible) result

(** One simulated loop, scaled to its benchmark [repeat] count. *)
type loop_run = {
  loop_name : string;
  ii : int;
  unroll_factor : int;
  sim : Flexl0_sim.Exec.result;
  scaled_cycles : float;
  scaled_stalls : float;
}

type bench_run = {
  bench_name : string;
  system_label : string;
  loop_runs : loop_run list;
  loop_cycles : float;  (** scaled cycles across all loops *)
  loop_stalls : float;
  mismatches : int;  (** total value mismatches — must be 0 *)
}

val run_schedule :
  system -> ?verify:bool -> ?invocations:int -> ?max_cycles:int ->
  ?faults:Flexl0_sim.Fault.plan -> ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  Schedule.t -> Flexl0_sim.Exec.result
(** Execute one specific schedule (no recompilation) on the system's
    hierarchy, optionally under fault injection and/or the invariant
    sanitizer. *)

val run_loop :
  system -> ?verify:bool -> ?max_sim_invocations:int -> ?max_cycles:int ->
  ?faults:Flexl0_sim.Fault.plan -> ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  ?checkpoint:int * (string -> unit) -> ?resume:string ->
  repeat:int -> Loop.t -> loop_run
(** Compiles with {!compile} and simulates [min repeat
    max_sim_invocations] back-to-back invocations, scaling cycle counts
    to [repeat] (default cap 4). [checkpoint] and [resume] thread
    through to {!Flexl0_sim.Exec.run} / {!Flexl0_sim.Exec.resume_from};
    a [resume] snapshot that does not validate against this loop's
    parameterization silently falls back to a fresh run. *)

val run_loop_result :
  system -> ?verify:bool -> ?max_sim_invocations:int -> ?max_cycles:int ->
  ?faults:Flexl0_sim.Fault.plan -> ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  ?checkpoint:int * (string -> unit) -> ?resume:string ->
  repeat:int -> Loop.t -> (loop_run, Errors.t) result
(** {!run_loop} with every failure mode in the typed channel:
    [Schedule_infeasible], [Watchdog_timeout], [Config_invalid],
    [Sanitizer_violation] (a [Strict] sanitizer aborted the run at the
    offending access), and — when [verify] (the default) sees wrong
    values — [Coherence_violation]. *)

val run_benchmark :
  system -> ?verify:bool -> ?max_cycles:int -> Mediabench.benchmark ->
  bench_run

val run_benchmark_result :
  system -> ?verify:bool -> ?max_cycles:int -> Mediabench.benchmark ->
  (bench_run, Errors.t) result
(** Stops at the first failing loop. [max_cycles] overrides every
    loop's cycle-watchdog budget; left unset, each loop's budget scales
    with its schedule and simulated invocation count
    ({!Flexl0_sim.Exec.default_max_cycles}) rather than being one fixed
    constant, and a tripped watchdog names the offending loop in the
    [Watchdog_timeout] payload. *)

(** A benchmark cell's checkpoint: the completed loop prefix plus, when
    a loop was mid-simulation, the executor's own cycle-level snapshot.
    Crosses attempts as a [Marshal]ed payload inside digest-checked
    frames (the {!Runner.ckpt} channel), same-binary contract as the
    journal. *)
type bench_ckpt = {
  bc_bench : string;
  bc_system : string;
  bc_done : loop_run list;
  bc_inflight : string option;
}

val run_benchmark_ckpt :
  system ->
  ?verify:bool ->
  ?max_cycles:int ->
  interval:int ->
  save:(string -> unit) ->
  prior:string option ->
  Mediabench.benchmark ->
  (bench_run, Errors.t) result
(** {!run_benchmark_result} with mid-run checkpointing: every [interval]
    simulated ticks (and at every loop boundary) a {!bench_ckpt} is
    handed to [save]; [prior] (from a previous attempt's last [save])
    fast-forwards past the completed loops and resumes the in-flight one
    from its snapshot. A [prior] from a different cell or an
    incompatible binary is ignored. The result is byte-identical to an
    uninterrupted {!run_benchmark_result}. *)

val execution_time :
  bench_run -> baseline:bench_run -> scalar_fraction:float -> float * float
(** [(total, stall)] execution time in cycles including the non-loop
    scalar share, which is derived from the *baseline* loop time so it is
    identical across systems (Section 5.1: modulo-scheduled inner loops
    are ~80% of the dynamic stream). *)
