open Flexl0_ir
open Flexl0_sched
module Sanitizer = Flexl0_mem.Sanitizer
module Mediabench = Flexl0_workloads.Mediabench
module Fuzz = Flexl0_workloads.Fuzz

type row = {
  a_source : string;
  a_loop : string;
  a_scheme : string;
  a_res_mii : int;
  a_rec_mii : int;
  a_binding : string;
  a_lower : int;
  a_heuristic_ii : int option;
  a_exact_ii : int option;
  a_verdict : string;
  a_nodes : int;
  a_gap : int option;
  a_failures : string list;
}

type summary = {
  s_rows : row list;
  s_total : int;
  s_optimal : int;
  s_gapped : int;
  s_max_gap : int;
  s_gap_sum : int;
  s_model_bugs : int;
  s_skipped : Runner.skip list;
}

let schemes =
  [ Scheme.L0 { selective = true }; Scheme.Multivliw;
    Scheme.Interleaved_locality ]

let system_for ~backend scheme =
  match (scheme : Scheme.t) with
  | Scheme.L0 _ -> Pipeline.l0_system ~backend ()
  | Scheme.Multivliw -> Pipeline.multivliw_system ~backend ()
  | Scheme.Interleaved_locality ->
    Pipeline.interleaved_system ~backend ~locality:true ()
  | Scheme.Interleaved_naive ->
    Pipeline.interleaved_system ~backend ~locality:false ()
  | Scheme.Base_unified -> Pipeline.baseline_system ~backend ()

(* Execute one exact schedule under every oracle we have: the static
   validator, the differential value verifier and the Strict sanitizer.
   Any complaint is a *model bug* — a schedule the exact backend claims
   legal that the machine model rejects — and is reported verbatim. *)
let certify sys sch =
  let cfg = sys.Pipeline.config in
  match Schedule.validate cfg sch with
  | Error e -> [ "validate: " ^ e ]
  | Ok () -> (
    match
      Pipeline.run_schedule sys ~verify:true ~sanitizer:Sanitizer.Strict sch
    with
    | res ->
      if res.Flexl0_sim.Exec.value_mismatches > 0 then
        [ Printf.sprintf "verifier: %d value mismatches"
            res.Flexl0_sim.Exec.value_mismatches ]
      else []
    | exception Sanitizer.Violation v ->
      [ "sanitizer: " ^ Sanitizer.violation_message v ]
    | exception Flexl0_sim.Exec.Watchdog_timeout _ -> [ "watchdog timeout" ]
    | exception (Invalid_argument m | Failure m) -> [ "crash: " ^ m ])

let audit_one ~budget ~source ~label (loop : Loop.t) scheme =
  let sys = system_for ~backend:Engine.Exact scheme in
  let cfg = sys.Pipeline.config and coherence = sys.Pipeline.coherence in
  let bd = Exact.lower_breakdown cfg scheme ~coherence loop in
  let heuristic_ii =
    match Engine.schedule_opt cfg scheme ~coherence loop with
    | Ok sch -> Some sch.Schedule.ii
    | Error _ -> None
  in
  let base =
    {
      a_source = source;
      a_loop = label;
      a_scheme = Scheme.to_string scheme;
      a_res_mii = bd.Mii.bd_res;
      a_rec_mii = bd.Mii.bd_rec;
      a_binding = Mii.binding_to_string bd.Mii.bd_binding;
      a_lower = max 1 (max bd.Mii.bd_res bd.Mii.bd_rec);
      a_heuristic_ii = heuristic_ii;
      a_exact_ii = None;
      a_verdict = "infeasible";
      a_nodes = 0;
      a_gap = None;
      a_failures = [];
    }
  in
  match Exact.solve cfg scheme ~coherence ~budget loop with
  | Error _ -> base
  | Ok r ->
    let exact_ii =
      Option.map (fun s -> s.Schedule.ii) r.Exact.exact_schedule
    in
    let gap =
      match (heuristic_ii, exact_ii) with
      | Some h, Some e -> Some (h - e)
      | _ -> None
    in
    let failures =
      match r.Exact.exact_schedule with
      | None -> []
      | Some sch -> certify sys sch
    in
    {
      base with
      a_lower = r.Exact.exact_lower;
      a_exact_ii = exact_ii;
      a_verdict = Exact.verdict_to_string r.Exact.exact_verdict;
      a_nodes = r.Exact.exact_nodes;
      a_gap = gap;
      a_failures = failures;
    }

(* ---- subjects ----------------------------------------------------- *)

let mediabench_subjects benchmarks =
  let benches =
    match benchmarks with
    | Some names ->
      List.filter
        (fun (b : Mediabench.benchmark) -> List.mem b.Mediabench.bname names)
        (Mediabench.all ())
    | None -> Mediabench.all ()
  in
  List.concat_map
    (fun (b : Mediabench.benchmark) ->
      List.map
        (fun wl ->
          (b.Mediabench.bname ^ "/" ^ wl.Mediabench.loop.Loop.name,
           wl.Mediabench.loop))
        b.Mediabench.loops)
    benches

let fuzz_subjects ~seed ~cases =
  if cases = 0 then []
  else
    List.map
      (fun (c : Fuzz.case) ->
        ( Printf.sprintf "fuzz-%d-%04d" seed c.Fuzz.c_index,
          Fuzz.materialize c.Fuzz.c_kernel ))
      (Fuzz.plan_cases ~seed ~cases ())

(* ---- the campaign ------------------------------------------------- *)

let summarize rows skipped =
  let total = List.length rows in
  let optimal =
    List.length (List.filter (fun r -> r.a_verdict = "optimal") rows)
  in
  let gaps = List.filter_map (fun r -> r.a_gap) rows in
  let gapped = List.length (List.filter (fun g -> g > 0) gaps) in
  {
    s_rows = rows;
    s_total = total;
    s_optimal = optimal;
    s_gapped = gapped;
    s_max_gap = List.fold_left max 0 gaps;
    s_gap_sum = List.fold_left ( + ) 0 (List.filter (fun g -> g > 0) gaps);
    s_model_bugs =
      List.length (List.filter (fun r -> r.a_failures <> []) rows);
    s_skipped = skipped;
  }

let subjects ?benchmarks ~fuzz_seed ~fuzz_cases () =
  List.map (fun (l, loop) -> ("mediabench", l, loop))
    (mediabench_subjects benchmarks)
  @ List.map (fun (l, loop) -> ("fuzz", l, loop))
      (fuzz_subjects ~seed:fuzz_seed ~cases:fuzz_cases)

let run ?(budget = Exact.default_budget) ?benchmarks ?(fuzz_seed = 42)
    ?(fuzz_cases = 12) ~runner () =
  let jobs =
    List.concat_map
      (fun (source, label, loop) ->
        List.map
          (fun scheme ->
            Runner.job
              ~id:
                (Printf.sprintf "audit-%s-%s" label (Scheme.to_string scheme))
              (fun ~seed:_ -> audit_one ~budget ~source ~label loop scheme))
          schemes)
      (subjects ?benchmarks ~fuzz_seed ~fuzz_cases ())
  in
  let rows = ref [] and skipped = ref [] in
  List.iter
    (function
      | Runner.Done row -> rows := row :: !rows
      | Runner.Gave_up sk -> skipped := sk :: !skipped)
    (Runner.run runner jobs);
  summarize (List.rev !rows) (List.rev !skipped)

(* Sequential variant for in-process callers (tests, benches). *)
let run_seq ?(budget = Exact.default_budget) ?benchmarks ?(fuzz_seed = 42)
    ?(fuzz_cases = 12) () =
  let rows =
    List.concat_map
      (fun (source, label, loop) ->
        List.map
          (fun scheme -> audit_one ~budget ~source ~label loop scheme)
          schemes)
      (subjects ?benchmarks ~fuzz_seed ~fuzz_cases ())
  in
  summarize rows []

(* ---- CSV ---------------------------------------------------------- *)

let csv_header =
  [
    "source"; "loop"; "scheme"; "res_mii"; "rec_mii"; "binding"; "lower";
    "heuristic_ii"; "exact_ii"; "verdict"; "nodes"; "gap"; "failures";
  ]

let opt_str = function None -> "" | Some i -> string_of_int i

let to_csv s =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Csv_export.record csv_header);
  List.iter
    (fun r ->
      Buffer.add_string b
        (Csv_export.record
           [
             r.a_source; r.a_loop; r.a_scheme; string_of_int r.a_res_mii;
             string_of_int r.a_rec_mii; r.a_binding; string_of_int r.a_lower;
             opt_str r.a_heuristic_ii; opt_str r.a_exact_ii; r.a_verdict;
             string_of_int r.a_nodes; opt_str r.a_gap;
             String.concat "; " r.a_failures;
           ]))
    s.s_rows;
  Buffer.contents b

(* The plottable companion of {!to_csv}: one series per scheme, one
   point per cell that both backends scheduled — the data behind a
   heuristic-vs-optimal gap chart. *)
let gap_figure s =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Csv_export.record
       [ "scheme"; "loop"; "heuristic_ii"; "exact_ii"; "gap" ]);
  List.iter
    (fun r ->
      match (r.a_heuristic_ii, r.a_exact_ii) with
      | Some h, Some e ->
        Buffer.add_string b
          (Csv_export.record
             [
               r.a_scheme; r.a_loop; string_of_int h; string_of_int e;
               string_of_int (h - e);
             ])
      | _ -> ())
    s.s_rows;
  Buffer.contents b

let passed s =
  s.s_model_bugs = 0 && s.s_skipped = []
  && s.s_total > 0
  && 10 * s.s_optimal >= 9 * s.s_total
