(** The pipeline's typed error channel.

    The lower layers each own the failure type for the stage that can
    fail — {!Flexl0_sched.Engine.infeasible} for the II search,
    {!Flexl0_sim.Exec.watchdog} for runaway simulations — because they
    cannot depend on this library. This module folds them, plus
    configuration and coherence failures, into one sum that the
    [Pipeline.*_result] API and the CLI report on. *)

type t =
  | Schedule_infeasible of Flexl0_sched.Engine.infeasible
  | Watchdog_timeout of Flexl0_sim.Exec.watchdog
  | Config_invalid of string
      (** an [Invalid_argument] escaping construction or validation *)
  | Coherence_violation of { loop : string; system : string; mismatches : int }
      (** the differential checker saw wrong values — either a compiler
          bug or an injected coherence-breaking fault doing its job *)
  | Sanitizer_violation of Flexl0_mem.Sanitizer.violation
      (** a [Strict]-mode sanitizer caught a broken hierarchy invariant
          at the offending access — strictly earlier than the end-of-run
          value verifier could have *)
  | Job_gave_up of { job : string; attempts : int; reason : string }
      (** a supervised {!Runner} job (one figure cell, one fuzz batch,
          one serve request) exhausted its retries — timeout, worker
          crash or torn result — and degraded to a skipped row (or an
          error response) instead of aborting the campaign *)
  | Protocol_error of string
      (** a serve-protocol frame was truncated, failed its digest, or
          carried a payload the daemon cannot interpret (unknown
          benchmark, unmarshallable request) *)
  | Shard_down of { shard : int; attempts : int; reason : string }
      (** a fleet client exhausted its failover budget: the request's
          primary shard [shard] and every fallback replica failed every
          attempt — the whole fleet is unreachable, not just one daemon *)
  | Shard_degraded of { shard : int; restarts : int; reason : string }
      (** the fleet supervisor stopped restarting a shard that flapped
          past its retry budget; its keyspace spills to neighboring
          shards (clients keep succeeding, warm hits for its keys are
          lost) *)
  | Overloaded of { retry_after : float }
      (** the daemon's admission queue passed its high-water mark and
          this request (or batch item) was shed instead of accepted —
          bounded memory under overload, never silent queue growth. The
          client should retry after [retry_after] seconds; the fleet
          client honors it automatically. *)

val of_infeasible : Flexl0_sched.Engine.infeasible -> t
val of_watchdog : Flexl0_sim.Exec.watchdog -> t

val to_string : t -> string
(** One-line human-readable rendering, used by error rows and the CLI. *)
