(** Text rendering of experiment results — the same rows/series the paper
    reports, printed as aligned tables. *)

val print_figure : Experiments.figure -> unit
(** Per benchmark: one column per configuration showing normalized
    execution time with its stall component, plus the AMEAN row. *)

val print_fig6 : Experiments.fig6_row list -> unit

val print_table1 : Experiments.table1_row list -> unit

val print_extras : Experiments.extra -> unit

val print_config : Flexl0_arch.Config.t -> unit
(** Table 2. *)

val print_sweep : title:string -> parameter:string -> Experiments.sweep_point list -> unit

val print_coherence : Experiments.coherence_row list -> unit

val print_specialization : Experiments.specialization_row list -> unit

val print_flush : Experiments.flush_row list -> unit

val print_steering : Experiments.steering_row list -> unit

val print_audit : Audit.summary -> unit
(** Per-scheme optimality aggregate, every positive gap with its MII
    attribution, model bugs and given-up jobs, and a PASS/FAIL verdict
    line ({!Audit.passed}). *)
