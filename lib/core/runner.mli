(** Supervised parallel execution of independent work units.

    A campaign — a figure's (benchmark, system) cells, a fuzz sweep's
    case batches — is a list of {!job}s. The runner executes each job in
    a {b forked worker process}, so a hang, out-of-memory kill or crash
    in one job cannot take down the rest of the campaign:

    - up to [jobs] workers run concurrently ([--jobs N]);
    - each attempt has an optional {b wall-clock timeout}; a worker that
      overruns is SIGKILLed (the worker, not the campaign);
    - a failed attempt (timeout, crash, exception escaping the job, torn
      result frame) is retried up to [retries] more times, with
      {b exponential backoff plus deterministic jitter} between attempts;
    - a job that exhausts its retries degrades to {!Gave_up} — a typed
      skipped outcome the caller folds into its own error channel
      (figures turn it into an [Errors.Job_gave_up] skipped row) instead
      of aborting.

    Results cross the process boundary as [Marshal]ed values in
    length-prefixed, MD5-checksummed frames (the {!Flexl0_util.Journal}
    framing), so a worker killed mid-write is detected, not misread. Job
    results must therefore be marshallable — plain data, no closures;
    everything the pipeline returns ([bench_run], [Errors.t], fuzz
    outcomes) qualifies.

    {b Determinism.} Outcomes are returned in job-list order, and a
    job's work receives a seed derived from its {e stable id} via
    {!Flexl0_util.Rng.keyed} — never from scheduling or completion
    order. A campaign whose jobs are pure functions of [(job, seed)]
    therefore produces bit-identical results whatever [jobs] is set to
    and however the OS interleaves the workers.

    {b Journal & resume.} With [journal_dir] set, every terminal outcome
    is appended (and flushed) to [<journal_dir>/journal] as it happens.
    With [resume] also set, jobs whose ids already have an intact
    journal entry are not re-executed — their journalled result is
    returned directly — so a campaign interrupted by SIGKILL, crash or
    power loss re-runs only its unfinished jobs. The journal tolerates a
    torn tail (see {!Flexl0_util.Journal.load}); resuming is only
    meaningful with the same binary and the same campaign parameters
    (same jobs, same seeds) — use a fresh run id when those change. *)

(** A job's checkpoint channel. With [journal_dir] set, each job gets a
    private file ([<dir>/ckpt.<id>-<digest>]): [ck_save] appends one
    {!Flexl0_util.Frame}-encoded snapshot and flushes (crash mid-append
    = torn tail, tolerated); [ck_load] returns the last intact snapshot
    from a previous attempt or a [--resume]d campaign, [None] when there
    is none. Without a journal dir the channel is inert ([ck_save]
    drops, [ck_load] is [None]) — jobs use it unconditionally. The
    runner deletes the file when the job reaches a terminal outcome, and
    a fresh (non-resume) campaign clears all leftover checkpoint files
    in its journal dir at startup. *)
type ckpt = { ck_save : string -> unit; ck_load : unit -> string option }

val null_ckpt : ckpt

type 'a job = {
  id : string;
      (** stable, campaign-unique id — the journal key, the seed key and
          the checkpoint-file key *)
  work : ckpt:ckpt -> seed:int -> 'a;
      (** runs in a forked child; must return marshallable data. An
          exception escaping [work] fails the attempt (and is retried —
          a retry sees whatever the failed attempt [ck_save]d, so a
          checkpointing job ratchets forward across attempts instead of
          restarting); expected failures should be part of ['a] (e.g. a
          [result]) so they complete the job instead. *)
}

val job : id:string -> (seed:int -> 'a) -> 'a job
(** A plain job that ignores its checkpoint channel. *)

val job_ckpt : id:string -> (ckpt:ckpt -> seed:int -> 'a) -> 'a job

(** A job that exhausted its retries. *)
type skip = {
  sk_job : string;
  sk_seed : int;
  sk_attempts : int;  (** attempts consumed, [1 + retries] at most *)
  sk_reason : string;  (** the last attempt's failure *)
}

type 'a outcome = Done of 'a | Gave_up of skip

val skip_message : skip -> string

(** Supervision events, for progress reporting. *)
type progress =
  | Job_started of { job : string; attempt : int }
  | Job_resumed of { job : string; attempt : int }
      (** emitted right after [Job_started] when a checkpoint file from
          an earlier attempt (or a resumed campaign) awaits the worker *)
  | Job_done of string
  | Job_cached of string  (** satisfied from the resume journal *)
  | Job_retry of {
      job : string;
      attempt : int;  (** the attempt that just failed *)
      delay : float;  (** backoff before the next one *)
      reason : string;
    }
  | Job_gave_up of skip

type config = {
  jobs : int;  (** concurrent workers, >= 1 *)
  timeout : float option;  (** per-attempt wall-clock seconds *)
  retries : int;  (** extra attempts after the first, >= 0 *)
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_max : float;  (** backoff growth cap, seconds *)
  seed : int;  (** master seed for per-job seeds and jitter *)
  journal_dir : string option;
      (** journal at [<dir>/journal], checkpoint files beside it;
          created if missing *)
  resume : bool;  (** reuse intact journal entries instead of re-running *)
  resync_journal : bool;
      (** replay the journal with {!Flexl0_util.Journal.Resync} — skip a
          mid-file corrupt record and keep the entries after it, instead
          of the default stop-at-first-defect (which re-runs every job
          journalled after the damage). Opt-in because skipping is
          silent. *)
  on_progress : progress -> unit;
}

val default : config
(** One worker, no timeout, 2 retries, backoff 0.5s doubling to 30s,
    seed 0, no journal, stop-at-first-defect replay, silent. *)

val job_seed : seed:int -> string -> int
(** The seed a job's [work] receives: a pure function of the master
    seed and the job id ({!Flexl0_util.Rng.keyed}), stable across runs,
    worker counts and resume. *)

val backoff_delay :
  base:float -> max_delay:float -> jitter:float -> attempt:int -> float
(** Delay before the retry that follows failed attempt [attempt]
    (1-based): [min (base * 2^(attempt-1)) max_delay], stretched by the
    jitter fraction to [capped * (1 + jitter/2)] with [jitter] clamped
    to [0, 1) — so the delay always lies in [[capped, 1.5 * capped)].
    Pure, for fake-clock tests; the runner draws [jitter] from
    [Rng.keyed] on [(seed, job id, attempt)]. *)

(** {1 Worker primitives}

    The fork / one-result-frame / exit protocol [run] supervises its
    workers with, exposed so the serve daemon can drive the same workers
    from its own socket select loop (incremental dispatch, per-request
    deadlines) instead of [run]'s batch loop. The [Marshal] contract is
    the journal's: same binary on both ends, caller fixes ['a]. *)

val fork_worker : (unit -> 'a) -> int * Unix.file_descr
(** Forks a child that runs the thunk, writes exactly one
    {!Flexl0_util.Frame}-encoded marshalled result (or the escaping
    exception's rendering) on the returned pipe and [_exit]s without
    running [at_exit] handlers. Returns [(pid, read_end)]; the caller
    owns both — read to EOF, then [waitpid]. *)

val read_result : string -> ('a, string) result
(** Decode everything a worker wrote on its pipe: [Ok] the job's value,
    or [Error reason] for an exception inside the worker, a torn or
    missing result frame (killed worker), or an unmarshallable
    payload. *)

val status_reason : Unix.process_status -> string
(** Human-readable rendering of a worker's exit status, used as the
    attempt-failure reason when the pipe carried no intact frame. *)

val run : config -> 'a job list -> 'a outcome list
(** Executes the campaign and returns one outcome per job, {b in job
    list order}. Raises [Invalid_argument] on duplicate job ids or a
    non-positive worker count. The runner itself never raises on job
    failure — every failure path ends in [Done] or [Gave_up]. *)
