let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let record fields = String.concat "," (List.map escape fields) ^ "\n"

let float f = Printf.sprintf "%.6f" f

let figure (fig : Experiments.figure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (record [ "bench"; "point"; "total"; "stall" ]);
  List.iter
    (fun (r : Experiments.row) ->
      List.iter
        (fun (p : Experiments.norm) ->
          Buffer.add_string buf
            (record
               [ r.Experiments.bench; p.Experiments.point;
                 float p.Experiments.total; float p.Experiments.stall ]))
        r.Experiments.points)
    fig.Experiments.rows;
  List.iter
    (fun (p : Experiments.norm) ->
      Buffer.add_string buf
        (record
           [ "AMEAN"; p.Experiments.point; float p.Experiments.total;
             float p.Experiments.stall ]))
    fig.Experiments.amean;
  Buffer.contents buf

let fig6 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (record
       [ "bench"; "linear_fraction"; "interleaved_fraction"; "hit_rate";
         "avg_unroll"; "seq_fraction" ]);
  List.iter
    (fun (r : Experiments.fig6_row) ->
      Buffer.add_string buf
        (record
           [ r.Experiments.f6_bench; float r.Experiments.linear_fraction;
             float r.Experiments.interleaved_fraction;
             float r.Experiments.hit_rate; float r.Experiments.avg_unroll;
             float r.Experiments.seq_fraction ]))
    rows;
  Buffer.contents buf

let table1 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (record [ "bench"; "s"; "sg"; "so"; "paper_s"; "paper_sg"; "paper_so" ]);
  List.iter
    (fun (r : Experiments.table1_row) ->
      let open Flexl0_workloads.Mediabench in
      let paper_fields =
        match r.Experiments.paper with
        | Some p -> [ float p.s; float p.sg; float p.so ]
        | None -> [ ""; ""; "" ]
      in
      Buffer.add_string buf
        (record
           ([ r.Experiments.t1_bench; float r.Experiments.ours.s;
              float r.Experiments.ours.sg; float r.Experiments.ours.so ]
           @ paper_fields)))
    rows;
  Buffer.contents buf

let sweep ~parameter points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (record [ parameter; "amean" ]);
  List.iter
    (fun (p : Experiments.sweep_point) ->
      Buffer.add_string buf
        (record [ string_of_int p.Experiments.parameter; float p.Experiments.amean ]))
    points;
  Buffer.contents buf

let coherence rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (record [ "bench"; "auto"; "nl0"; "one_cluster"; "psr" ]);
  List.iter
    (fun (r : Experiments.coherence_row) ->
      Buffer.add_string buf
        (record
           [ r.Experiments.co_bench; float r.Experiments.auto;
             float r.Experiments.nl0; float r.Experiments.one_cluster;
             float r.Experiments.psr ]))
    rows;
  Buffer.contents buf

let save ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)
