let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let record fields = String.concat "," (List.map escape fields) ^ "\n"

(* RFC 4180 parser, the inverse of [record] applied line-wise: quoted
   fields may contain commas, doubled quotes and newlines. Accepts both
   LF and CRLF records. *)
let parse text =
  let len = String.length text in
  let rows = ref [] and fields = ref [] and buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec plain i =
    if i >= len then (if Buffer.length buf > 0 || !fields <> [] then flush_row ())
    else
      match text.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '\r' when i + 1 < len && text.[i + 1] = '\n' ->
        flush_row ();
        plain (i + 2)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= len then invalid_arg "Csv_export.parse: unterminated quoted field"
    else
      match text.[i] with
      | '"' when i + 1 < len && text.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let float f = Printf.sprintf "%.6f" f

let figure (fig : Experiments.figure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (record [ "bench"; "point"; "total"; "stall" ]);
  List.iter
    (fun (r : Experiments.row) ->
      List.iter
        (fun (p : Experiments.norm) ->
          Buffer.add_string buf
            (record
               [ r.Experiments.bench; p.Experiments.point;
                 float p.Experiments.total; float p.Experiments.stall ]))
        r.Experiments.points)
    fig.Experiments.rows;
  List.iter
    (fun (p : Experiments.norm) ->
      Buffer.add_string buf
        (record
           [ "AMEAN"; p.Experiments.point; float p.Experiments.total;
             float p.Experiments.stall ]))
    fig.Experiments.amean;
  if fig.Experiments.skipped <> [] then begin
    Buffer.add_string buf (record [ "skipped" ]);
    Buffer.add_string buf (record [ "bench"; "reason" ]);
    List.iter
      (fun (bench, reason) -> Buffer.add_string buf (record [ bench; reason ]))
      fig.Experiments.skipped
  end;
  Buffer.contents buf

let figure_skipped text =
  let rec after_marker = function
    | [] -> []
    | [ "skipped" ] :: rest -> section rest
    | _ :: rest -> after_marker rest
  and section = function
    | [ "bench"; "reason" ] :: rest -> rows rest
    | rest -> rows rest
  and rows = function
    | [ bench; reason ] :: rest -> (bench, reason) :: rows rest
    | _ -> []
  in
  after_marker (parse text)

let fig6 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (record
       [ "bench"; "linear_fraction"; "interleaved_fraction"; "hit_rate";
         "avg_unroll"; "seq_fraction" ]);
  List.iter
    (fun (r : Experiments.fig6_row) ->
      Buffer.add_string buf
        (record
           [ r.Experiments.f6_bench; float r.Experiments.linear_fraction;
             float r.Experiments.interleaved_fraction;
             float r.Experiments.hit_rate; float r.Experiments.avg_unroll;
             float r.Experiments.seq_fraction ]))
    rows;
  Buffer.contents buf

let table1 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (record [ "bench"; "s"; "sg"; "so"; "paper_s"; "paper_sg"; "paper_so" ]);
  List.iter
    (fun (r : Experiments.table1_row) ->
      let open Flexl0_workloads.Mediabench in
      let paper_fields =
        match r.Experiments.paper with
        | Some p -> [ float p.s; float p.sg; float p.so ]
        | None -> [ ""; ""; "" ]
      in
      Buffer.add_string buf
        (record
           ([ r.Experiments.t1_bench; float r.Experiments.ours.s;
              float r.Experiments.ours.sg; float r.Experiments.ours.so ]
           @ paper_fields)))
    rows;
  Buffer.contents buf

let sweep ~parameter points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (record [ parameter; "amean" ]);
  List.iter
    (fun (p : Experiments.sweep_point) ->
      Buffer.add_string buf
        (record [ string_of_int p.Experiments.parameter; float p.Experiments.amean ]))
    points;
  Buffer.contents buf

let coherence rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (record [ "bench"; "auto"; "nl0"; "one_cluster"; "psr" ]);
  List.iter
    (fun (r : Experiments.coherence_row) ->
      Buffer.add_string buf
        (record
           [ r.Experiments.co_bench; float r.Experiments.auto;
             float r.Experiments.nl0; float r.Experiments.one_cluster;
             float r.Experiments.psr ]))
    rows;
  Buffer.contents buf

let save ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)
