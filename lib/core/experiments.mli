(** The paper's evaluation, experiment by experiment (see DESIGN.md §5).

    Every function reruns compilation + simulation from scratch and
    returns typed rows; the bench harness and the CLI render them. Pass a
    subset of benchmarks to shorten runs (tests do). *)

open Flexl0_workloads

(** One normalized execution-time bar: [total] and its [stall] component,
    both relative to the unified-L1 no-L0 baseline (= 1.0). *)
type norm = { point : string; total : float; stall : float }

type row = { bench : string; points : norm list }

type figure = {
  title : string;
  point_labels : string list;
  rows : row list;
  amean : norm list;
  total_mismatches : int;  (** coherence violations across all runs: must be 0 *)
  skipped : (string * string) list;
      (** benchmarks dropped from [rows] because some loop failed to
          compile or run, as [(bench, reason)] pairs — empty on a healthy
          figure *)
}

val normalized_figure :
  title:string ->
  ?baseline:Pipeline.system ->
  ?runner:Runner.config ->
  ?checkpoint_interval:int ->
  ?max_cycles:int ->
  systems:Pipeline.system list ->
  Mediabench.benchmark list ->
  figure
(** Normalized execution-time figure over arbitrary systems. A benchmark
    whose compilation or simulation fails (infeasible II, watchdog, bad
    config, coherence violation) for the baseline or any system lands in
    [skipped] instead of raising; [amean] averages the surviving rows.

    Every (benchmark, system) cell — baseline included — is one
    independent work unit. With [runner] the cells run in supervised
    forked workers ({!Runner.run}): parallel up to [jobs], per-cell
    wall-clock timeout, retry with backoff; a cell whose job finally
    gives up skips its benchmark with an [Errors.Job_gave_up] reason
    instead of aborting the figure. Without [runner] the cells run
    inline, sequentially. Either way the figure is assembled in
    canonical cell order, so its bytes are identical whatever the
    worker count or completion order. [max_cycles] overrides every
    simulation's cycle-watchdog budget
    ({!Pipeline.run_benchmark_result}).

    [checkpoint_interval] (ticks, off when absent or [<= 0]) runs each
    cell under {!Pipeline.run_benchmark_ckpt} through the runner's
    per-job checkpoint channel: an interrupted cell — SIGKILLed worker,
    timeout, whole-campaign restart under [resume] — re-enters its
    in-flight loop at the last checkpointed cycle instead of restarting
    the cell. Figure bytes are identical with or without it. *)

val fig5 :
  ?benchmarks:Mediabench.benchmark list ->
  ?max_ii:int ->
  ?runner:Runner.config ->
  ?checkpoint_interval:int ->
  ?max_cycles:int ->
  unit ->
  figure
(** Execution time for 4-, 8-, 16-entry and unbounded L0 buffers,
    normalized to the no-L0 baseline (paper Figure 5). [max_ii] tightens
    the II search ceiling; loops it renders infeasible show up in the
    figure's [skipped] list. [runner] and [max_cycles] as in
    {!normalized_figure}. *)

val fig7 :
  ?benchmarks:Mediabench.benchmark list ->
  ?max_ii:int ->
  ?runner:Runner.config ->
  ?checkpoint_interval:int ->
  ?max_cycles:int ->
  unit ->
  figure
(** 8-entry L0 buffers vs MultiVLIW vs word-interleaved under two
    scheduling heuristics (paper Figure 7). [runner] and [max_cycles] as
    in {!normalized_figure}. *)

(** Figure 6 per-benchmark data: subblock mapping mix, L0 hit rate and
    the average unrolling factor the compiler chose. *)
type fig6_row = {
  f6_bench : string;
  linear_fraction : float;  (** of subblocks mapped, 0..1 *)
  interleaved_fraction : float;
  hit_rate : float;  (** L0 load hit rate, 0..1 *)
  avg_unroll : float;
  seq_fraction : float;
      (** static share of L0 loads that got SEQ_ACCESS (step 4 prefers
          SEQ whenever the next bus cycle is provably free) *)
}

val fig6 : ?benchmarks:Mediabench.benchmark list -> unit -> fig6_row list

(** Table 1: our synthetic suites' dynamic stride mix next to the
    paper's. *)
type table1_row = {
  t1_bench : string;
  ours : Mediabench.stride_stats;
  paper : Mediabench.stride_stats option;
}

val table1 : ?benchmarks:Mediabench.benchmark list -> unit -> table1_row list

(** Section 5.2's additional studies. *)
type extra = {
  two_entry_amean : float;
      (** normalized exec with 2-entry buffers (paper: ~0.93) *)
  all_candidates_penalty : float;
      (** 4-entry all-candidates / 4-entry selective (paper: ~1.06) *)
  prefetch2_epicdec : float;
      (** epicdec exec with prefetch distance 2 / distance 1 (paper: ~0.88) *)
  prefetch2_rasta : float;  (** same for rasta (paper: ~0.96) *)
}

val extras : unit -> extra

(** {1 Beyond the paper: sensitivity and ablation studies}

    These probe the design choices the paper motivates but does not
    sweep. *)

(** One sweep point: a parameter value and the 8-entry-L0 AMEAN
    normalized execution time against a baseline built with the *same*
    parameter value. *)
type sweep_point = { parameter : int; amean : float }

val l1_latency_sensitivity :
  ?benchmarks:Mediabench.benchmark list -> ?latencies:int list -> unit ->
  sweep_point list
(** The wire-delay premise: as the unified L1 gets slower (latencies
    default [4; 6; 8; 10; 12]), the L0 buffers' advantage must grow. *)

val cluster_scaling :
  ?benchmarks:Mediabench.benchmark list -> ?clusters:int list -> unit ->
  sweep_point list
(** Scale the machine to 2 / 4 / 8 clusters (the subblock size follows
    the paper's rule: L1 block / clusters). *)

val prefetch_distance_sweep :
  ?benchmarks:Mediabench.benchmark list -> ?distances:int list -> unit ->
  sweep_point list
(** AMEAN at automatic-prefetch distances 0..4 (the §5.2 study,
    generalized; distance 0 disables the POSITIVE/NEGATIVE hints in
    hardware — the contribution of automatic prefetching). *)

(** Per-benchmark normalized exec under each coherence discipline. *)
type coherence_row = {
  co_bench : string;
  auto : float;
  nl0 : float;
  one_cluster : float;
  psr : float;
}

val coherence_ablation :
  ?benchmarks:Mediabench.benchmark list -> unit -> coherence_row list
(** Force NL0 / 1C / PSR on every coherence set (Section 4.1's
    qualitative comparison, quantified). *)

(** Code-specialization study (Section 4.1 / [4]). *)
type specialization_row = {
  sp_loop : string;
  conservative_ii : int;
  aggressive_ii : int;
  gain_cycles : int;  (** per invocation, net of the runtime check *)
}

val specialization_study : unit -> specialization_row list
(** Conservative (may-alias) vs aggressive disambiguation on
    representative kernels, scheduled for the 8-entry L0 machine. *)

(** Inter-loop flush analysis (Section 4.1, "selective flushing"). *)
type flush_row = {
  fl_bench : string;
  total_flush_points : int;  (** boundaries x clusters *)
  flushes_needed : int;
}

val flush_study : ?benchmarks:Mediabench.benchmark list -> unit -> flush_row list

(** Stream-steering ablation: step 8 of Figure 4 recommends clusters so
    unrolled good-stride streams rotate and the interleaved mapping
    applies; without it the mapping degrades to per-cluster linear
    copies. *)
type steering_row = {
  st_loop : string;
  with_steering_cycles : int;
  without_steering_cycles : int;
  with_interleaved : int;
  without_interleaved : int;
}

val steering_ablation : unit -> steering_row list
