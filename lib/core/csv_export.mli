(** CSV rendering of experiment results, for plotting outside OCaml.

    Values are RFC 4180 CSV: a header row, one record per
    benchmark/point, fields quoted only when they contain commas, quotes
    or newlines. All functions return the CSV as a string; [save] writes
    it to a file. *)

val record : string list -> string
(** One CSV record, fields escaped, terminated by ["\n"]. *)

val parse : string -> string list list
(** Inverse of concatenated {!record}s: splits RFC 4180 text (LF or
    CRLF) into rows of unescaped fields. Raises [Invalid_argument] on an
    unterminated quoted field. *)

val figure : Experiments.figure -> string
(** Long format: [bench,point,total,stall] plus the AMEAN rows. A
    figure with skipped benchmarks gets a trailing section — a
    [skipped] marker record, a [bench,reason] header, then one record
    per skipped benchmark, reasons RFC-4180-escaped (they routinely
    carry commas, and runner reasons may carry quotes or newlines).
    Healthy figures have no such section, so their shape is
    unchanged. *)

val figure_skipped : string -> (string * string) list
(** The [(bench, reason)] pairs of a {!figure} string's trailing
    skipped section — [[]] when the figure was healthy. Total inverse
    of the writer: [figure_skipped (figure f) = f.skipped]. *)

val fig6 : Experiments.fig6_row list -> string
(** [bench,linear_fraction,interleaved_fraction,hit_rate,avg_unroll]. *)

val table1 : Experiments.table1_row list -> string
(** [bench,s,sg,so,paper_s,paper_sg,paper_so]. *)

val sweep : parameter:string -> Experiments.sweep_point list -> string

val coherence : Experiments.coherence_row list -> string

val save : path:string -> string -> unit
