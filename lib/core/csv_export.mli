(** CSV rendering of experiment results, for plotting outside OCaml.

    Values are plain RFC-4180-ish CSV: a header row, one record per
    benchmark/point, fields quoted only when they contain commas. All
    functions return the CSV as a string; [save] writes it to a file. *)

val figure : Experiments.figure -> string
(** Long format: [bench,point,total,stall] plus the AMEAN rows. *)

val fig6 : Experiments.fig6_row list -> string
(** [bench,linear_fraction,interleaved_fraction,hit_rate,avg_unroll]. *)

val table1 : Experiments.table1_row list -> string
(** [bench,s,sg,so,paper_s,paper_sg,paper_so]. *)

val sweep : parameter:string -> Experiments.sweep_point list -> string

val coherence : Experiments.coherence_row list -> string

val save : path:string -> string -> unit
