(** CSV rendering of experiment results, for plotting outside OCaml.

    Values are RFC 4180 CSV: a header row, one record per
    benchmark/point, fields quoted only when they contain commas, quotes
    or newlines. All functions return the CSV as a string; [save] writes
    it to a file. *)

val record : string list -> string
(** One CSV record, fields escaped, terminated by ["\n"]. *)

val parse : string -> string list list
(** Inverse of concatenated {!record}s: splits RFC 4180 text (LF or
    CRLF) into rows of unescaped fields. Raises [Invalid_argument] on an
    unterminated quoted field. *)

val figure : Experiments.figure -> string
(** Long format: [bench,point,total,stall] plus the AMEAN rows, then a
    [SKIPPED,bench,reason,] record per skipped benchmark (none on a
    healthy figure). *)

val fig6 : Experiments.fig6_row list -> string
(** [bench,linear_fraction,interleaved_fraction,hit_rate,avg_unroll]. *)

val table1 : Experiments.table1_row list -> string
(** [bench,s,sg,so,paper_s,paper_sg,paper_so]. *)

val sweep : parameter:string -> Experiments.sweep_point list -> string

val coherence : Experiments.coherence_row list -> string

val save : path:string -> string -> unit
