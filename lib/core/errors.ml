module Engine = Flexl0_sched.Engine
module Exec = Flexl0_sim.Exec

type t =
  | Schedule_infeasible of Engine.infeasible
  | Watchdog_timeout of Exec.watchdog
  | Config_invalid of string
  | Coherence_violation of { loop : string; system : string; mismatches : int }
  | Sanitizer_violation of Flexl0_mem.Sanitizer.violation
  | Job_gave_up of { job : string; attempts : int; reason : string }
  | Protocol_error of string
  | Shard_down of { shard : int; attempts : int; reason : string }
  | Shard_degraded of { shard : int; restarts : int; reason : string }
  | Overloaded of { retry_after : float }

let of_infeasible inf = Schedule_infeasible inf
let of_watchdog wd = Watchdog_timeout wd

let to_string = function
  | Schedule_infeasible inf -> "infeasible: " ^ Engine.infeasible_message inf
  | Watchdog_timeout wd -> "watchdog: " ^ Exec.watchdog_message wd
  | Config_invalid msg -> "invalid configuration: " ^ msg
  | Coherence_violation { loop; system; mismatches } ->
    Printf.sprintf "coherence violation: %d wrong load value%s in %s on %s"
      mismatches
      (if mismatches = 1 then "" else "s")
      loop system
  | Sanitizer_violation v ->
    "sanitizer violation: " ^ Flexl0_mem.Sanitizer.violation_message v
  | Job_gave_up { job; attempts; reason } ->
    Printf.sprintf "runner gave up: job %s failed %d attempt%s: %s" job
      attempts
      (if attempts = 1 then "" else "s")
      reason
  | Protocol_error msg -> "protocol error: " ^ msg
  | Shard_down { shard; attempts; reason } ->
    Printf.sprintf
      "shard %d down: request failed on every replica after %d attempt%s: %s"
      shard attempts
      (if attempts = 1 then "" else "s")
      reason
  | Shard_degraded { shard; restarts; reason } ->
    Printf.sprintf
      "shard %d degraded after %d restart%s (%s): keyspace spills to its \
       neighbors"
      shard restarts
      (if restarts = 1 then "" else "s")
      reason
  | Overloaded { retry_after } ->
    Printf.sprintf
      "overloaded: request shed by admission control, retry after %.1fs"
      retry_after
