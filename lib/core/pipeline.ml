open Flexl0_ir
open Flexl0_sched
open Flexl0_workloads
module Config = Flexl0_arch.Config
module Unified = Flexl0_mem.Unified
module Multivliw = Flexl0_mem.Multivliw
module Interleaved = Flexl0_mem.Interleaved
module Exec = Flexl0_sim.Exec

type system = {
  label : string;
  config : Config.t;
  scheme : Scheme.t;
  coherence : Engine.coherence_mode;
  max_ii : int;
  backend : Engine.backend;
  make_hierarchy :
    Config.t -> backing:Flexl0_mem.Backing.t -> Flexl0_mem.Hierarchy.t;
}

let default_max_ii = 256

let baseline_system ?(config = Config.default) ?(max_ii = default_max_ii)
    ?(backend = Engine.Heuristic) () =
  {
    label = "unified-baseline";
    config = Config.with_l0 Config.No_l0 config;
    scheme = Scheme.Base_unified;
    coherence = Engine.Auto;
    max_ii;
    backend;
    make_hierarchy = (fun cfg ~backing -> Unified.baseline cfg ~backing);
  }

let coherence_label = function
  | Engine.Auto -> ""
  | Engine.Force_nl0 -> "-nl0"
  | Engine.Force_1c -> "-1c"
  | Engine.Force_psr -> "-psr"

let l0_system ?(config = Config.default) ?(capacity = Config.Entries 8)
    ?(selective = true) ?(prefetch_distance = 1) ?(coherence = Engine.Auto)
    ?(max_ii = default_max_ii) ?(backend = Engine.Heuristic) () =
  let config =
    config |> Config.with_l0 capacity
    |> Config.with_prefetch_distance prefetch_distance
  in
  let cap_label =
    match capacity with
    | Config.No_l0 -> "none"
    | Config.Entries n -> string_of_int n
    | Config.Unbounded -> "unbounded"
  in
  {
    label =
      Printf.sprintf "l0-%s%s%s%s" cap_label
        (if selective then "" else "-all")
        (if prefetch_distance = 1 then ""
         else Printf.sprintf "-pf%d" prefetch_distance)
        (coherence_label coherence);
    config;
    scheme = Scheme.L0 { selective };
    coherence;
    max_ii;
    backend;
    make_hierarchy = (fun cfg ~backing -> Unified.create cfg ~backing);
  }

let multivliw_system ?(config = Config.default) ?(max_ii = default_max_ii)
    ?(backend = Engine.Heuristic) () =
  {
    label = "multivliw";
    config = Config.with_l0 Config.No_l0 config;
    scheme = Scheme.Multivliw;
    coherence = Engine.Auto;
    max_ii;
    backend;
    make_hierarchy = (fun cfg ~backing -> Multivliw.create cfg ~backing);
  }

let interleaved_system ?(config = Config.default) ?(max_ii = default_max_ii)
    ?(backend = Engine.Heuristic) ~locality () =
  {
    label = (if locality then "interleaved-2" else "interleaved-1");
    config = Config.with_l0 Config.No_l0 config;
    scheme =
      (if locality then Scheme.Interleaved_locality else Scheme.Interleaved_naive);
    coherence = Engine.Auto;
    max_ii;
    backend;
    make_hierarchy = (fun cfg ~backing -> Interleaved.create cfg ~backing);
  }

let compile_result system loop =
  Compile.compile_result system.config system.scheme
    ~coherence:system.coherence ~max_ii:system.max_ii ~backend:system.backend
    loop

let compile system loop =
  Compile.compile system.config system.scheme ~coherence:system.coherence
    ~max_ii:system.max_ii ~backend:system.backend loop

type loop_run = {
  loop_name : string;
  ii : int;
  unroll_factor : int;
  sim : Exec.result;
  scaled_cycles : float;
  scaled_stalls : float;
}

type bench_run = {
  bench_name : string;
  system_label : string;
  loop_runs : loop_run list;
  loop_cycles : float;
  loop_stalls : float;
  mismatches : int;
}

let run_schedule system ?(verify = true) ?(invocations = 1) ?max_cycles ?faults
    ?sanitizer sch =
  Exec.run system.config sch
    ~hierarchy:(fun ~backing -> system.make_hierarchy system.config ~backing)
    ~invocations ~verify ?max_cycles ?faults ?sanitizer ()

let run_loop system ?(verify = true) ?(max_sim_invocations = 4) ?max_cycles
    ?faults ?sanitizer ?checkpoint ?resume ~repeat loop =
  let sch = compile system loop in
  let invocations = max 1 (min repeat max_sim_invocations) in
  let hierarchy ~backing = system.make_hierarchy system.config ~backing in
  let fresh () =
    Exec.run system.config sch ~hierarchy ~invocations ~verify ?max_cycles
      ?faults ?sanitizer ?checkpoint ()
  in
  let sim =
    match resume with
    | None -> fresh ()
    | Some payload -> (
      (* A snapshot that no longer matches this loop's parameterization
         (different binary, edited campaign) is not an error — the loop
         just runs from the start, as if the checkpoint never existed. *)
      match
        Exec.resume_from payload system.config sch ~hierarchy ~invocations
          ~verify ?max_cycles ?faults ?sanitizer ?checkpoint ()
      with
      | Ok r -> r
      | Error _ -> fresh ())
  in
  let scale = float_of_int repeat /. float_of_int invocations in
  {
    loop_name = loop.Loop.name;
    ii = sch.Schedule.ii;
    unroll_factor = sch.Schedule.loop.Loop.unroll_factor;
    sim;
    scaled_cycles = float_of_int sim.Exec.total_cycles *. scale;
    scaled_stalls = float_of_int sim.Exec.stall_cycles *. scale;
  }

let run_loop_result system ?(verify = true) ?max_sim_invocations ?max_cycles
    ?faults ?sanitizer ?checkpoint ?resume ~repeat loop =
  match
    run_loop system ~verify ?max_sim_invocations ?max_cycles ?faults ?sanitizer
      ?checkpoint ?resume ~repeat loop
  with
  | lr ->
    if verify && lr.sim.Exec.value_mismatches > 0 then
      Error
        (Errors.Coherence_violation
           { loop = loop.Loop.name; system = system.label;
             mismatches = lr.sim.Exec.value_mismatches })
    else Ok lr
  | exception Engine.Infeasible inf -> Error (Errors.of_infeasible inf)
  | exception Exec.Watchdog_timeout wd -> Error (Errors.of_watchdog wd)
  | exception Flexl0_mem.Sanitizer.Violation v ->
    Error (Errors.Sanitizer_violation v)
  | exception Invalid_argument msg -> Error (Errors.Config_invalid msg)

let run_benchmark system ?(verify = true) ?max_cycles
    (b : Mediabench.benchmark) =
  let loop_runs =
    List.map
      (fun { Mediabench.loop; repeat } ->
        run_loop system ~verify ?max_cycles ~repeat loop)
      b.Mediabench.loops
  in
  {
    bench_name = b.Mediabench.bname;
    system_label = system.label;
    loop_runs;
    loop_cycles =
      List.fold_left (fun acc r -> acc +. r.scaled_cycles) 0.0 loop_runs;
    loop_stalls =
      List.fold_left (fun acc r -> acc +. r.scaled_stalls) 0.0 loop_runs;
    mismatches =
      List.fold_left (fun acc r -> acc + r.sim.Exec.value_mismatches) 0 loop_runs;
  }

let run_benchmark_result system ?(verify = true) ?max_cycles
    (b : Mediabench.benchmark) =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | { Mediabench.loop; repeat } :: rest -> (
      match run_loop_result system ~verify ?max_cycles ~repeat loop with
      | Ok lr -> go (lr :: acc) rest
      | Error _ as e -> e)
  in
  Result.map
    (fun loop_runs ->
      {
        bench_name = b.Mediabench.bname;
        system_label = system.label;
        loop_runs;
        loop_cycles =
          List.fold_left (fun acc r -> acc +. r.scaled_cycles) 0.0 loop_runs;
        loop_stalls =
          List.fold_left (fun acc r -> acc +. r.scaled_stalls) 0.0 loop_runs;
        mismatches =
          List.fold_left
            (fun acc r -> acc + r.sim.Exec.value_mismatches)
            0 loop_runs;
      })
    (go [] b.Mediabench.loops)

(* ------------------------------------------------------------------ *)
(* Checkpointed benchmark cells. One benchmark = a sequence of loop
   simulations; the checkpoint records the completed prefix plus (when a
   loop is mid-flight) the executor's own snapshot, so an interrupted
   cell resumes at cycle granularity, not from the benchmark's start. *)

type bench_ckpt = {
  bc_bench : string;
  bc_system : string;
  bc_done : loop_run list;  (** completed loops, in benchmark order *)
  bc_inflight : string option;
      (** [Exec] snapshot of the next loop, when it was mid-simulation *)
}

(* Format guard in front of the marshalled record. [Marshal] offers no
   type safety: reading a structurally different value as a [bench_ckpt]
   is undefined behavior, not an exception — so a payload must prove it
   was written by this codec before it is unmarshalled at all. Bump the
   version whenever [bench_ckpt] or [loop_run] changes shape. *)
let bench_ckpt_magic = "FLBC1\n"

let run_benchmark_ckpt system ?(verify = true) ?max_cycles ~interval ~save
    ~prior (b : Mediabench.benchmark) =
  if interval < 1 then
    invalid_arg "Pipeline.run_benchmark_ckpt: interval must be >= 1";
  let nloops = List.length b.Mediabench.loops in
  let magic_len = String.length bench_ckpt_magic in
  let prior_done, prior_inflight =
    match prior with
    | None -> ([], None)
    | Some payload
      when String.length payload < magic_len
           || String.sub payload 0 magic_len <> bench_ckpt_magic ->
      (* not this codec's payload at all — a shipped checkpoint from an
         older binary or another subsystem; start fresh *)
      ([], None)
    | Some payload -> (
      (* The payload travels in digest-checked frames, but it may still
         come from a different cell (reshuffled campaign) or an
         incompatible binary — anything that does not validate restarts
         the cell from scratch rather than poisoning it. *)
      match (Marshal.from_string payload magic_len : bench_ckpt) with
      | ck
        when ck.bc_bench = b.Mediabench.bname
             && ck.bc_system = system.label
             && List.length ck.bc_done <= nloops ->
        (ck.bc_done, ck.bc_inflight)
      | _ -> ([], None)
      | exception _ -> ([], None))
  in
  let ndone = List.length prior_done in
  let save_ckpt done_rev inflight =
    save
      (bench_ckpt_magic
      ^ Marshal.to_string
          { bc_bench = b.Mediabench.bname; bc_system = system.label;
            bc_done = List.rev done_rev; bc_inflight = inflight }
          [])
  in
  let rec go acc idx = function
    | [] -> Ok (List.rev acc)
    | { Mediabench.loop; repeat } :: rest ->
      if idx < ndone then go (List.nth prior_done idx :: acc) (idx + 1) rest
      else begin
        let resume = if idx = ndone then prior_inflight else None in
        let sink snap = save_ckpt acc (Some snap) in
        match
          run_loop_result system ~verify ?max_cycles
            ~checkpoint:(interval, sink) ?resume ~repeat loop
        with
        | Ok lr ->
          let acc = lr :: acc in
          (* Loop-boundary checkpoint: the finished prefix is durable
             even between executor checkpoints. *)
          save_ckpt acc None;
          go acc (idx + 1) rest
        | Error _ as e -> e
      end
  in
  Result.map
    (fun loop_runs ->
      {
        bench_name = b.Mediabench.bname;
        system_label = system.label;
        loop_runs;
        loop_cycles =
          List.fold_left (fun acc r -> acc +. r.scaled_cycles) 0.0 loop_runs;
        loop_stalls =
          List.fold_left (fun acc r -> acc +. r.scaled_stalls) 0.0 loop_runs;
        mismatches =
          List.fold_left
            (fun acc r -> acc + r.sim.Exec.value_mismatches)
            0 loop_runs;
      })
    (go [] 0 b.Mediabench.loops)

let execution_time run ~baseline ~scalar_fraction =
  let scalar =
    baseline.loop_cycles *. scalar_fraction /. (1.0 -. scalar_fraction)
  in
  (run.loop_cycles +. scalar, run.loop_stalls)
