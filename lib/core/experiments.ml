open Flexl0_workloads
module Config = Flexl0_arch.Config
module Stats = Flexl0_util.Stats
module Exec = Flexl0_sim.Exec

type norm = { point : string; total : float; stall : float }

type row = { bench : string; points : norm list }

type figure = {
  title : string;
  point_labels : string list;
  rows : row list;
  amean : norm list;
  total_mismatches : int;
  skipped : (string * string) list;
}

let default_benchmarks () = Mediabench.all ()

(* Normalized execution-time figure over a list of systems. A benchmark
   whose compilation or simulation fails for any system is dropped from
   the rows and recorded in [skipped] instead of aborting the figure.

   Every (benchmark, system) cell — the baseline included — is one
   independent job. With [runner] set, the cells execute in supervised
   forked workers (parallel, timed out, retried; a cell whose job gives
   up skips its benchmark like any other cell failure); without it they
   run inline, sequentially. Assembly walks the cells in canonical order
   (benchmark by benchmark, baseline first, then each system), so the
   figure's bytes are independent of worker count and completion
   order. *)
let normalized_figure ~title ?baseline ?runner ?checkpoint_interval ?max_cycles
    ~systems benchmarks =
  let baseline =
    match baseline with Some b -> b | None -> Pipeline.baseline_system ()
  in
  let all_systems = baseline :: systems in
  let cell_work sys b ~ckpt =
    (* With an interval set, the cell simulates under mid-run
       checkpointing through the runner's per-job channel: a retried or
       resumed cell fast-forwards its finished loops and re-enters the
       interrupted one at the saved cycle. Results are byte-identical
       either way. *)
    match checkpoint_interval with
    | Some interval when interval > 0 ->
      Pipeline.run_benchmark_ckpt ?max_cycles sys ~interval
        ~save:ckpt.Runner.ck_save
        ~prior:(ckpt.Runner.ck_load ())
        b
    | _ -> Pipeline.run_benchmark_result ?max_cycles sys b
  in
  let cell_jobs (b : Mediabench.benchmark) =
    List.mapi
      (fun idx (sys : Pipeline.system) ->
        Runner.job_ckpt
          ~id:
            (Printf.sprintf "%s/%d-%s" b.Mediabench.bname idx
               sys.Pipeline.label)
          (fun ~ckpt ~seed:_ -> cell_work sys b ~ckpt))
      all_systems
  in
  let jobs = List.concat_map cell_jobs benchmarks in
  let outcomes =
    match runner with
    | Some cfg -> Runner.run cfg jobs
    | None ->
      List.map
        (fun j -> Runner.Done (j.Runner.work ~ckpt:Runner.null_ckpt ~seed:0))
        jobs
  in
  let cell = function
    | Runner.Done r -> r
    | Runner.Gave_up sk ->
      Error
        (Errors.Job_gave_up
           {
             job = sk.Runner.sk_job;
             attempts = sk.Runner.sk_attempts;
             reason = sk.Runner.sk_reason;
           })
  in
  let mismatches = ref 0 in
  let skipped = ref [] in
  let skip bname err =
    skipped := (bname, Errors.to_string err) :: !skipped;
    None
  in
  let rec chunk per = function
    | [] -> []
    | l ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> take (k - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let cells, rest = take per [] l in
      cells :: chunk per rest
  in
  let row_of_bench (b : Mediabench.benchmark) cells =
    match List.map cell cells with
    | [] -> None
    | base_cell :: sys_cells -> (
      match base_cell with
      | Error err -> skip b.Mediabench.bname err
      | Ok base -> (
        mismatches := !mismatches + base.Pipeline.mismatches;
        let base_total, _ =
          Pipeline.execution_time base ~baseline:base
            ~scalar_fraction:b.Mediabench.scalar_fraction
        in
        let rec points acc syss cells =
          match (syss, cells) with
          | [], _ -> Some (List.rev acc)
          | (_ : Pipeline.system) :: _, [] -> None
          | (sys : Pipeline.system) :: srest, c :: crest -> (
            match c with
            | Error err -> skip b.Mediabench.bname err
            | Ok run ->
              mismatches := !mismatches + run.Pipeline.mismatches;
              let total, stall =
                Pipeline.execution_time run ~baseline:base
                  ~scalar_fraction:b.Mediabench.scalar_fraction
              in
              points
                ({
                   point = sys.Pipeline.label;
                   total = total /. base_total;
                   stall = stall /. base_total;
                 }
                :: acc)
                srest crest)
        in
        match points [] systems sys_cells with
        | None -> None
        | Some points -> Some { bench = b.Mediabench.bname; points }))
  in
  let rows =
    List.filter_map
      (fun (b, cells) -> row_of_bench b cells)
      (List.combine benchmarks (chunk (List.length all_systems) outcomes))
  in
  let amean =
    List.mapi
      (fun idx (sys : Pipeline.system) ->
        let totals = List.map (fun r -> (List.nth r.points idx).total) rows in
        let stalls = List.map (fun r -> (List.nth r.points idx).stall) rows in
        {
          point = sys.Pipeline.label;
          total = Stats.mean totals;
          stall = Stats.mean stalls;
        })
      systems
  in
  {
    title;
    point_labels = List.map (fun (s : Pipeline.system) -> s.Pipeline.label) systems;
    rows;
    amean;
    total_mismatches = !mismatches;
    skipped = List.rev !skipped;
  }

let fig5 ?benchmarks ?max_ii ?runner ?checkpoint_interval ?max_cycles () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let systems =
    [
      Pipeline.l0_system ~capacity:(Config.Entries 4) ?max_ii ();
      Pipeline.l0_system ~capacity:(Config.Entries 8) ?max_ii ();
      Pipeline.l0_system ~capacity:(Config.Entries 16) ?max_ii ();
      Pipeline.l0_system ~capacity:Config.Unbounded ?max_ii ();
    ]
  in
  normalized_figure
    ~title:"Figure 5: execution time vs L0 buffer size (normalized to no-L0)"
    ?baseline:(Option.map (fun max_ii -> Pipeline.baseline_system ~max_ii ()) max_ii)
    ?runner ?checkpoint_interval ?max_cycles ~systems benchmarks

let fig7 ?benchmarks ?max_ii ?runner ?checkpoint_interval ?max_cycles () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let systems =
    [
      Pipeline.l0_system ~capacity:(Config.Entries 8) ?max_ii ();
      Pipeline.multivliw_system ?max_ii ();
      Pipeline.interleaved_system ~locality:false ?max_ii ();
      Pipeline.interleaved_system ~locality:true ?max_ii ();
    ]
  in
  normalized_figure
    ~title:
      "Figure 7: L0 buffers vs MultiVLIW vs word-interleaved cache \
       (normalized to no-L0 unified)"
    ?baseline:(Option.map (fun max_ii -> Pipeline.baseline_system ~max_ii ()) max_ii)
    ?runner ?checkpoint_interval ?max_cycles ~systems benchmarks

type fig6_row = {
  f6_bench : string;
  linear_fraction : float;
  interleaved_fraction : float;
  hit_rate : float;
  avg_unroll : float;
  seq_fraction : float;
}

let fig6 ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let sys = Pipeline.l0_system ~capacity:(Config.Entries 8) () in
  List.map
    (fun (b : Mediabench.benchmark) ->
      let run = Pipeline.run_benchmark sys b in
      let counter name =
        List.fold_left
          (fun acc (lr : Pipeline.loop_run) ->
            acc
            + Option.value ~default:0
                (Stats.Counters.find lr.Pipeline.sim.Exec.counter_set name))
          0 run.Pipeline.loop_runs
      in
      let linear = counter "subblocks_linear"
      and interleaved = counter "subblocks_interleaved"
      and hits = counter "l0_load_hits"
      and misses = counter "l0_load_misses" in
      (* Step 4 prefers SEQ_ACCESS: measure the static SEQ share of the
         L0-using loads across the suite's schedules. *)
      let seq = ref 0 and par = ref 0 in
      List.iter
        (fun { Mediabench.loop; _ } ->
          let sch = Pipeline.compile sys loop in
          Array.iter
            (fun (p : Flexl0_sched.Schedule.placement) ->
              match p.Flexl0_sched.Schedule.hints.Flexl0_mem.Hint.access with
              | Flexl0_mem.Hint.Seq_access -> incr seq
              | Flexl0_mem.Hint.Par_access ->
                if p.Flexl0_sched.Schedule.uses_l0 then incr par
              | Flexl0_mem.Hint.No_access | Flexl0_mem.Hint.Inval_only -> ())
            sch.Flexl0_sched.Schedule.placements)
        b.Mediabench.loops;
      let mapped = linear + interleaved in
      let weighted_unroll, weight_sum =
        List.fold_left
          (fun (acc, wsum) (lr : Pipeline.loop_run) ->
            ( acc +. (float_of_int lr.Pipeline.unroll_factor *. lr.Pipeline.scaled_cycles),
              wsum +. lr.Pipeline.scaled_cycles ))
          (0.0, 0.0) run.Pipeline.loop_runs
      in
      {
        f6_bench = b.Mediabench.bname;
        linear_fraction = Stats.ratio linear (max 1 mapped);
        interleaved_fraction = Stats.ratio interleaved (max 1 mapped);
        hit_rate = Stats.ratio hits (max 1 (hits + misses));
        avg_unroll =
          (if weight_sum > 0.0 then weighted_unroll /. weight_sum else 1.0);
        seq_fraction = Stats.ratio !seq (max 1 (!seq + !par));
      })
    benchmarks

type table1_row = {
  t1_bench : string;
  ours : Mediabench.stride_stats;
  paper : Mediabench.stride_stats option;
}

let table1 ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  List.map
    (fun (b : Mediabench.benchmark) ->
      {
        t1_bench = b.Mediabench.bname;
        ours = Mediabench.stride_stats b;
        paper = List.assoc_opt b.Mediabench.bname Mediabench.paper_table1;
      })
    benchmarks

type extra = {
  two_entry_amean : float;
  all_candidates_penalty : float;
  prefetch2_epicdec : float;
  prefetch2_rasta : float;
}

let amean_of_system sys benchmarks =
  let baseline = Pipeline.baseline_system () in
  Stats.mean
    (List.map
       (fun (b : Mediabench.benchmark) ->
         let base = Pipeline.run_benchmark baseline b in
         let base_total, _ =
           Pipeline.execution_time base ~baseline:base
             ~scalar_fraction:b.Mediabench.scalar_fraction
         in
         let run = Pipeline.run_benchmark sys b in
         let total, _ =
           Pipeline.execution_time run ~baseline:base
             ~scalar_fraction:b.Mediabench.scalar_fraction
         in
         total /. base_total)
       benchmarks)

let bench_ratio ~num_sys ~den_sys b =
  let baseline = Pipeline.baseline_system () in
  let base = Pipeline.run_benchmark baseline b in
  let time sys =
    let run = Pipeline.run_benchmark sys b in
    fst
      (Pipeline.execution_time run ~baseline:base
         ~scalar_fraction:b.Mediabench.scalar_fraction)
  in
  time num_sys /. time den_sys

let extras () =
  let benchmarks = default_benchmarks () in
  let two_entry_amean =
    amean_of_system (Pipeline.l0_system ~capacity:(Config.Entries 2) ()) benchmarks
  in
  let all_candidates_penalty =
    amean_of_system
      (Pipeline.l0_system ~capacity:(Config.Entries 4) ~selective:false ())
      benchmarks
    /. amean_of_system
         (Pipeline.l0_system ~capacity:(Config.Entries 4) ())
         benchmarks
  in
  let pf2 = Pipeline.l0_system ~capacity:(Config.Entries 8) ~prefetch_distance:2 ()
  and pf1 = Pipeline.l0_system ~capacity:(Config.Entries 8) () in
  let prefetch2_epicdec =
    bench_ratio ~num_sys:pf2 ~den_sys:pf1 (Mediabench.find "epicdec")
  in
  let prefetch2_rasta =
    bench_ratio ~num_sys:pf2 ~den_sys:pf1 (Mediabench.find "rasta")
  in
  { two_entry_amean; all_candidates_penalty; prefetch2_epicdec; prefetch2_rasta }

(* ------------------------------------------------------------------ *)
(* Sensitivity and ablation studies (beyond the paper's figures).       *)

type sweep_point = { parameter : int; amean : float }

let amean_vs_matched_baseline ~make_l0 ~make_base benchmarks parameter =
  let l0 = make_l0 parameter and base = make_base parameter in
  let amean =
    Stats.mean
      (List.map
         (fun (b : Mediabench.benchmark) ->
           let base_run = Pipeline.run_benchmark base b in
           let base_total, _ =
             Pipeline.execution_time base_run ~baseline:base_run
               ~scalar_fraction:b.Mediabench.scalar_fraction
           in
           let run = Pipeline.run_benchmark l0 b in
           let total, _ =
             Pipeline.execution_time run ~baseline:base_run
               ~scalar_fraction:b.Mediabench.scalar_fraction
           in
           total /. base_total)
         benchmarks)
  in
  { parameter; amean }

let l1_latency_sensitivity ?benchmarks ?(latencies = [ 4; 6; 8; 10; 12 ]) () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let with_l1_latency lat =
    let d = Config.default in
    { d with Config.l1 = { d.Config.l1 with Config.l1_latency = lat } }
  in
  List.map
    (amean_vs_matched_baseline benchmarks
       ~make_l0:(fun lat -> Pipeline.l0_system ~config:(with_l1_latency lat) ())
       ~make_base:(fun lat ->
         Pipeline.baseline_system ~config:(with_l1_latency lat) ()))
    latencies

let cluster_scaling ?benchmarks ?(clusters = [ 2; 4; 8 ]) () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let with_clusters n =
    let d = Config.default in
    {
      d with
      Config.num_clusters = n;
      (* The paper's rule: subblock = L1 block / clusters. *)
      Config.l0 =
        { d.Config.l0 with Config.subblock_bytes = d.Config.l1.Config.block_bytes / n };
    }
  in
  List.map
    (amean_vs_matched_baseline benchmarks
       ~make_l0:(fun n -> Pipeline.l0_system ~config:(with_clusters n) ())
       ~make_base:(fun n -> Pipeline.baseline_system ~config:(with_clusters n) ()))
    clusters

let prefetch_distance_sweep ?benchmarks ?(distances = [ 0; 1; 2; 3; 4 ]) () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  List.map
    (amean_vs_matched_baseline benchmarks
       ~make_l0:(fun d -> Pipeline.l0_system ~prefetch_distance:d ())
       ~make_base:(fun _ -> Pipeline.baseline_system ()))
    distances

type coherence_row = {
  co_bench : string;
  auto : float;
  nl0 : float;
  one_cluster : float;
  psr : float;
}

let coherence_ablation ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let baseline = Pipeline.baseline_system () in
  List.map
    (fun (b : Mediabench.benchmark) ->
      let base = Pipeline.run_benchmark baseline b in
      let base_total, _ =
        Pipeline.execution_time base ~baseline:base
          ~scalar_fraction:b.Mediabench.scalar_fraction
      in
      let normalized coherence =
        let run = Pipeline.run_benchmark (Pipeline.l0_system ~coherence ()) b in
        let total, _ =
          Pipeline.execution_time run ~baseline:base
            ~scalar_fraction:b.Mediabench.scalar_fraction
        in
        total /. base_total
      in
      {
        co_bench = b.Mediabench.bname;
        auto = normalized Flexl0_sched.Engine.Auto;
        nl0 = normalized Flexl0_sched.Engine.Force_nl0;
        one_cluster = normalized Flexl0_sched.Engine.Force_1c;
        psr = normalized Flexl0_sched.Engine.Force_psr;
      })
    benchmarks

type specialization_row = {
  sp_loop : string;
  conservative_ii : int;
  aggressive_ii : int;
  gain_cycles : int;
}

let specialization_study () =
  let open Flexl0_ir in
  let open Flexl0_sched in
  let kernels =
    [
      Flexl0_workloads.Kernels.iir_inplace ~name:"predictor" ~trip:256 ~len:256;
      Flexl0_workloads.Kernels.stencil3 ~name:"stencil" ~trip:256 ~len:256;
      Flexl0_workloads.Kernels.saxpy ~name:"saxpy" ~trip:256 ~len:256;
      Flexl0_workloads.Kernels.fir4 ~name:"fir" ~trip:256 ~len:256;
    ]
  in
  List.map
    (fun loop ->
      let sp =
        Specialize.specialize Config.default (Scheme.L0 { selective = true })
          loop
      in
      {
        sp_loop = loop.Loop.name;
        conservative_ii = sp.Specialize.conservative.Schedule.ii;
        aggressive_ii = sp.Specialize.aggressive.Schedule.ii;
        gain_cycles = Specialize.gain sp ~trips:loop.Loop.trip_count;
      })
    kernels

type flush_row = {
  fl_bench : string;
  total_flush_points : int;
  flushes_needed : int;
}

let flush_study ?benchmarks () =
  let benchmarks =
    match benchmarks with Some b -> b | None -> default_benchmarks ()
  in
  let sys = Pipeline.l0_system () in
  List.map
    (fun (b : Mediabench.benchmark) ->
      let schedules =
        List.map
          (fun { Mediabench.loop; _ } -> Pipeline.compile sys loop)
          b.Mediabench.loops
      in
      let plan = Flexl0_sched.Interloop.plan sys.Pipeline.config schedules in
      let total =
        List.length schedules * sys.Pipeline.config.Config.num_clusters
      in
      {
        fl_bench = b.Mediabench.bname;
        total_flush_points = total;
        flushes_needed = total - plan.Flexl0_sched.Interloop.flushes_saved;
      })
    benchmarks

type steering_row = {
  st_loop : string;
  with_steering_cycles : int;
  without_steering_cycles : int;
  with_interleaved : int;  (* interleaved subblocks mapped *)
  without_interleaved : int;
}

let steering_ablation () =
  let open Flexl0_sched in
  let cfg = Config.default in
  let kernels =
    [
      Flexl0_ir.Unroll.apply ~factor:4
        (Flexl0_workloads.Kernels.vector_add ~name:"vadd x4" ~trip:512 ~len:1024
           Flexl0_ir.Opcode.W2);
      Flexl0_ir.Unroll.apply ~factor:4
        (Flexl0_workloads.Kernels.block_copy ~name:"copy x4" ~trip:512 ~len:1024
           Flexl0_ir.Opcode.W2);
      Flexl0_ir.Unroll.apply ~factor:4
        (Flexl0_workloads.Kernels.upsample_bytes ~name:"upsample x4" ~trip:512
           ~len:1024);
    ]
  in
  List.map
    (fun loop ->
      let measure steering =
        let sch =
          Engine.schedule cfg (Scheme.L0 { selective = true }) ~steering loop
        in
        let r =
          Flexl0_sim.Exec.run cfg sch
            ~hierarchy:(fun ~backing -> Flexl0_mem.Unified.create cfg ~backing)
            ~invocations:2 ()
        in
        ( r.Exec.total_cycles,
          Option.value ~default:0
            (Stats.Counters.find r.Exec.counter_set "subblocks_interleaved") )
      in
      let wc, wi = measure true in
      let nc, ni = measure false in
      {
        st_loop = loop.Flexl0_ir.Loop.name;
        with_steering_cycles = wc;
        without_steering_cycles = nc;
        with_interleaved = wi;
        without_interleaved = ni;
      })
    kernels
