(** Supervised fuzz campaigns: {!Flexl0_workloads.Fuzz} batch execution
    on top of {!Runner}.

    The sequential fuzzer is one process; a hung simulation or a crash
    in case 37 kills the whole campaign and loses cases 0–36. This
    driver plans the full case stream up front
    ({!Flexl0_workloads.Fuzz.plan_cases} — a pure function of the
    seed), chunks it into batches, and runs each batch as one
    supervised {!Runner} job: forked, timed out, retried with backoff,
    journaled for [--resume]. The report is assembled from the batch
    results in case order, so for a given seed it is identical to the
    sequential fuzzer's whatever the worker count — including the
    failure-budget early stop, which is applied during assembly, not
    during execution. *)

open Flexl0_workloads

val fuzz :
  ?backend:Flexl0_sched.Engine.backend ->
  ?faults:Flexl0_sim.Fault.plan ->
  ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  ?systems:Fuzz.sys list ->
  ?max_failures:int ->
  ?batch:int ->
  runner:Runner.config ->
  seed:int ->
  cases:int ->
  unit ->
  Fuzz.report * Runner.skip list
(** Run [cases] fuzz cases under the supervised runner. [batch]
    (default 1) is the number of cases per runner job — raise it to
    amortize fork overhead when cases are cheap; note the per-job
    timeout then covers the whole batch. Defaults for [sanitizer]
    ([Strict]), [systems] (the full matrix) and [max_failures] (5)
    match {!Flexl0_workloads.Fuzz.run}.

    The returned report covers the batches that completed: a batch
    whose job gave up (timeout, worker crash — after retries) is
    excluded from every report counter and returned in the
    {!Runner.skip} list instead, so one pathological kernel cannot
    poison the campaign; its job id names the batch for a later
    [--resume] or sequential replay. [r_early_stop] is set only by the
    failure budget, exactly as in the sequential fuzzer; cases after
    the budget trips are not counted even though they may have
    executed. [keep_going] has no parallel equivalent — time-box
    campaigns with the per-job timeout instead.

    [backend] selects the scheduler for every compile; under
    [Engine.Exact] failures are model bugs — see
    {!Flexl0_workloads.Fuzz.run_system}. *)
