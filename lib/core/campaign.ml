open Flexl0_workloads

(* Chunk [l] into groups of [per] (the last may be shorter). *)
let rec chunk per = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | x :: rest -> take (k - 1) (x :: acc) rest
      | [] -> (List.rev acc, [])
    in
    let b, rest = take per [] l in
    b :: chunk per rest

let fuzz ?backend ?faults ?(sanitizer = Flexl0_mem.Sanitizer.Strict) ?systems
    ?(max_failures = 5) ?(batch = 1) ~runner ~seed ~cases () =
  if batch < 1 then invalid_arg "Campaign.fuzz: batch must be >= 1";
  let systems =
    match systems with Some s -> s | None -> Fuzz.default_systems ()
  in
  let batches = chunk batch (Fuzz.plan_cases ?faults ~seed ~cases ()) in
  (* One job per batch. The worker inherits the planned cases through
     fork; only the outcome lists — plain data — cross the pipe back. *)
  let jobs =
    List.mapi
      (fun bi cs ->
        Runner.job
          ~id:(Printf.sprintf "fuzz-%06d" bi)
          (fun ~seed:_ ->
            List.map
              (fun (c : Fuzz.case) ->
                Fuzz.run_case ?backend ?faults:c.Fuzz.c_faults ~sanitizer
                  ~systems c.Fuzz.c_kernel)
              cs))
      batches
  in
  let outcomes = Runner.run runner jobs in
  (* Assemble in case order — identical to the sequential fuzzer's
     bookkeeping, including where the failure budget stops counting. *)
  let runs = ref 0 and passes = ref 0 and skips = ref 0 in
  let failures = ref [] in
  let done_cases = ref 0 in
  let early = ref false in
  let gave_up = ref [] in
  (try
     List.iter2
       (fun cs outcome ->
         match outcome with
         | Runner.Gave_up sk -> gave_up := sk :: !gave_up
         | Runner.Done case_results ->
           List.iter2
             (fun (c : Fuzz.case) results ->
               if List.length !failures >= max_failures then begin
                 early := true;
                 raise Exit
               end;
               List.iter
                 (fun (label, o) ->
                   incr runs;
                   match o with
                   | Fuzz.Pass -> incr passes
                   | Fuzz.Skip _ -> incr skips
                   | Fuzz.Fail fk ->
                     failures :=
                       {
                         Fuzz.f_case = c.Fuzz.c_index;
                         f_system = label;
                         f_kind = fk;
                         f_kernel = c.Fuzz.c_kernel;
                         f_faults = c.Fuzz.c_faults;
                       }
                       :: !failures)
                 results;
               incr done_cases)
             cs case_results)
       batches outcomes
   with Exit -> ());
  ( {
      Fuzz.r_cases = !done_cases;
      r_runs = !runs;
      r_passes = !passes;
      r_skips = !skips;
      r_failures = List.rev !failures;
      r_early_stop = !early;
    },
    List.rev !gave_up )
