(** Concrete address generation for a loop's memory references.

    The scheduler works on symbolic {!Flexl0_ir.Memref} patterns; the
    simulator turns them into byte addresses using the loop's array
    {!Flexl0_ir.Loop.layout}. Constant strides walk the array (wrapping at
    the end so long simulations stay in bounds; negative strides start
    from the top); [Unknown] strides draw uniformly from the array, from
    a stateless per-(instruction, iteration) hash so the address is the
    same however replays are ordered. *)

open Flexl0_ir

type t

val create : Loop.t -> seed:int -> t

val address : t -> instr:Instr.t -> iteration:int -> int
(** Byte address the memory instruction touches at a given body
    iteration. Raises [Invalid_argument] for instructions without a
    memref. *)

val footprint_bytes : t -> int
(** Total bytes spanned by the layout (for sizing the backing store). *)

type compiled
(** {!address} with the per-call layout and array-info lookups resolved
    once: the executor compiles one of these per scheduled event, so the
    per-iteration address is pure int arithmetic. *)

val compile : t -> instr:Instr.t -> compiled
(** Raises [Invalid_argument] for instructions without a memref, exactly
    like {!address}. *)

val compiled_address : compiled -> iteration:int -> int
(** Identical result to {!address} on the compiled instruction. *)

val hash_mix : int -> int -> int -> int
(** The stateless non-negative mixing function behind unknown-stride
    addresses; also used to fill simulated memories deterministically. *)

val memory_size : Loop.t -> int
(** Backing size that safely contains the loop's layout, with margin for
    prefetches running past array ends. *)
