open Flexl0_util
module Hierarchy = Flexl0_mem.Hierarchy

type cursor = {
  mutable cur_inv : int;
  mutable cur_t : int;
  mutable cum_stall : int;
  mutable loads : int;
  mutable stores : int;
  mutable mismatches : int;
  mutable ticks : int;
}

let fresh_cursor () =
  { cur_inv = 0; cur_t = 0; cum_stall = 0; loads = 0; stores = 0;
    mismatches = 0; ticks = 0 }

let copy_cursor c = { c with cur_inv = c.cur_inv }

let version = 1

type meta = { m_version : int; m_key : string; m_params : string; m_ticks : int }

type error =
  | Damaged of string
  | Mismatch of { field : string; snapshot : string; live : string }

let error_message = function
  | Damaged msg -> "damaged snapshot: " ^ msg
  | Mismatch { field; snapshot; live } ->
    Printf.sprintf "snapshot %s %S does not match the live run's %S" field
      snapshot live

(* Layout (all via {!Flatio}):
   "FXSN" version key params | 7 cursor ints | "HIER" hier.snap | "ENDS".
   The key/params guard comes *before* any hierarchy state so an
   incompatible snapshot is rejected without touching the live state. *)

let encode ~key ~params cur (hier : Hierarchy.t) =
  let w = Flatio.W.create ~initial:(64 * 1024) () in
  Flatio.W.tag w "FXSN";
  Flatio.W.int w version;
  Flatio.W.string w key;
  Flatio.W.string w params;
  Flatio.W.int w cur.cur_inv;
  Flatio.W.int w cur.cur_t;
  Flatio.W.int w cur.cum_stall;
  Flatio.W.int w cur.loads;
  Flatio.W.int w cur.stores;
  Flatio.W.int w cur.mismatches;
  Flatio.W.int w cur.ticks;
  Flatio.W.tag w "HIER";
  hier.Hierarchy.snap w;
  Flatio.W.tag w "ENDS";
  Flatio.W.contents w

let read_header r =
  Flatio.R.tag r "FXSN";
  let m_version = Flatio.R.int r in
  let m_key = Flatio.R.string r in
  let m_params = Flatio.R.string r in
  (m_version, m_key, m_params)

let read_cursor r =
  let cur_inv = Flatio.R.int r in
  let cur_t = Flatio.R.int r in
  let cum_stall = Flatio.R.int r in
  let loads = Flatio.R.int r in
  let stores = Flatio.R.int r in
  let mismatches = Flatio.R.int r in
  let ticks = Flatio.R.int r in
  { cur_inv; cur_t; cum_stall; loads; stores; mismatches; ticks }

let decode_meta payload =
  match
    let r = Flatio.R.of_string payload in
    let m_version, m_key, m_params = read_header r in
    let cur = read_cursor r in
    { m_version; m_key; m_params; m_ticks = cur.ticks }
  with
  | meta -> Ok meta
  | exception Flatio.Corrupt msg -> Error (Damaged msg)

let restore payload ~key ~params (hier : Hierarchy.t) =
  match
    let r = Flatio.R.of_string payload in
    let m_version, m_key, m_params = read_header r in
    if m_version <> version then
      Error
        (Mismatch
           { field = "version"; snapshot = string_of_int m_version;
             live = string_of_int version })
    else if m_key <> key then
      Error (Mismatch { field = "key"; snapshot = m_key; live = key })
    else if m_params <> params then
      Error (Mismatch { field = "params"; snapshot = m_params; live = params })
    else begin
      let cur = read_cursor r in
      Flatio.R.tag r "HIER";
      hier.Hierarchy.restore r;
      Flatio.R.tag r "ENDS";
      Flatio.R.expect_end r;
      Ok cur
    end
  with
  | result -> result
  | exception Flatio.Corrupt msg -> Error (Damaged msg)

(* ------------------------------------------------------------------ *)
(* Checkpoint files: Frame-encoded snapshots appended to one file, so a
   crash mid-append leaves at most a torn tail and the last *intact*
   frame always wins. The resynchronizing replay additionally survives a
   corrupted frame in the middle — the reader just falls back to the
   most recent frame whose digest still checks. *)

let append_file path payload =
  let oc =
    open_out_gen
      [ Open_wronly; Open_creat; Open_append; Open_binary ]
      0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Frame.encode payload);
      flush oc)

let file_sink path payload = append_file path payload

let read_last_file path =
  match Journal.load_frames ~replay:Journal.Resync path with
  | [], _ -> None
  | frames, _ -> Some (List.nth frames (List.length frames - 1))
