(** Timed lock-step execution of a modulo schedule against a memory
    hierarchy.

    The four clusters run in lock-step, so a memory operation that takes
    longer than the latency the scheduler assumed freezes the whole
    machine for the difference. Execution time therefore decomposes as

    [total = compute + stall],
    [compute = (stage_count - 1 + trips) * II],
    [stall = sum over cycles of max over that cycle's accesses of
             (actual latency - assumed latency)].

    Memory operations fire in schedule order with iterations overlapped
    exactly as the kernel prescribes; inserted explicit prefetches and
    PSR replicas fire at their slots too. At loop exit every cluster's
    L0 buffer is invalidated (inter-loop coherence, Section 4.1).

    When [verify] is set the executor also replays the loop *sequentially*
    against a reference memory — every store writes a value unique to
    (instruction, iteration) — and compares each load's simulated value
    with the reference. Mismatches mean the compiler mismanaged
    coherence; correctly validated schedules must report zero. *)

open Flexl0_sched

type result = {
  trips : int;
  compute_cycles : int;
  stall_cycles : int;
  total_cycles : int;
  loads : int;
  stores : int;
  value_mismatches : int;
  counters : (string * int) list;  (** hierarchy counters snapshot, sorted *)
  counter_set : Flexl0_util.Stats.Counters.t;
      (** the hierarchy's counter set itself — O(1) lookups via
          {!Flexl0_util.Stats.Counters.find} without scanning the
          [counters] snapshot *)
}

(** One observed memory event, for debugging and visualization. *)
type trace_event = {
  ev_time : int;  (** issue cycle (stall-adjusted) *)
  ev_iteration : int;
  ev_instr : int;  (** instruction id; -1 for explicit prefetches *)
  ev_kind : [ `Load | `Store | `Prefetch | `Replica ];
  ev_cluster_id : int;
  ev_addr : int;
  ev_served : Flexl0_mem.Hierarchy.served option;  (** None for prefetches *)
  ev_stall : int;  (** cycles this event froze the machine *)
}

val pp_trace_event : Format.formatter -> trace_event -> unit

val ipc_denominator : result -> int
(** [total_cycles], guarded to at least 1 — convenience for rates. *)

(** The run blew past its cycle budget — under fault injection the
    usual cause is an [extra-latency] fault stretching every access. *)
type watchdog = { wd_loop : string; wd_elapsed : int; wd_limit : int }

exception Watchdog_timeout of watchdog

val watchdog_message : watchdog -> string

val default_max_cycles : invocation_span:int -> invocations:int -> int
(** The watchdog budget {!run} uses when [max_cycles] is not given:
    1000x the compute time of all simulated invocations plus a fixed
    grace — i.e. it scales with the schedule and the invocation count
    (and hence with a benchmark's repeat factor) instead of being one
    constant for every loop. Exposed so campaign drivers can derive
    tighter or looser budgets from the same rule. *)

val run :
  Flexl0_arch.Config.t ->
  Schedule.t ->
  hierarchy:(backing:Flexl0_mem.Backing.t -> Flexl0_mem.Hierarchy.t) ->
  ?trips:int ->
  ?invocations:int ->
  ?seed:int ->
  ?verify:bool ->
  ?max_cycles:int ->
  ?faults:Fault.plan ->
  ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  ?on_event:(trace_event -> unit) ->
  ?checkpoint:int * (string -> unit) ->
  unit ->
  result
(** [on_event] observes every memory event as it fires (loads, stores,
    explicit prefetches, PSR replicas) — wire it to a printer or a
    collector for cycle-level debugging. [trips] defaults to the loop's
    trip count capped at 2048 body
    iterations (plenty for steady-state measurement); [invocations]
    (default 1) runs the whole loop that many times back to back — the
    software pipeline drains, every L0 buffer is invalidated (inter-loop
    coherence), the rest of the benchmark scribbles over memory (a
    deterministic scramble, mirrored in the reference replay) and the
    loop restarts, while L1 stays warm, modelling an inner loop
    re-entered repeatedly by its benchmark; [seed] drives unknown-stride
    address streams; [verify] defaults to [true].

    [faults] wraps the hierarchy in {!Fault.instrument}. [sanitizer]
    (default [Off]) additionally wraps it — outermost, so injected
    faults stay visible — in {!Flexl0_mem.Sanitizer.wrap}; [Strict]
    mode raises {!Flexl0_mem.Sanitizer.Violation} at the offending
    access. [max_cycles] bounds total simulated cycles (default: a
    generous multiple of the compute time); raises {!Watchdog_timeout}
    when exceeded.

    [checkpoint:(interval, sink)] hands [sink] a {!Snapshot.encode}d
    payload every [interval] ticks (one tick = one machine cycle of one
    invocation) — feed it {!Snapshot.file_sink} or ship it over a pipe.
    The sink is never called after the final tick; [interval] must be
    positive. Checkpoint capture does not perturb the simulation: the
    run's result, counters and every loaded value are byte-identical
    with and without it. *)

val resume_from :
  string ->
  Flexl0_arch.Config.t ->
  Schedule.t ->
  hierarchy:(backing:Flexl0_mem.Backing.t -> Flexl0_mem.Hierarchy.t) ->
  ?trips:int ->
  ?invocations:int ->
  ?seed:int ->
  ?verify:bool ->
  ?max_cycles:int ->
  ?faults:Fault.plan ->
  ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  ?on_event:(trace_event -> unit) ->
  ?checkpoint:int * (string -> unit) ->
  unit ->
  (result, Snapshot.error) Stdlib.result
(** [resume_from payload] continues a run from a snapshot taken by
    [run ~checkpoint]. Call it with {e exactly} the arguments of the
    interrupted run: the static context (schedule events, reference
    loads, watchdog budget) is rebuilt deterministically from them, the
    snapshot supplies only the cursor and the hierarchy's dynamic state.
    The continued run is byte-identical to one that was never
    interrupted — same {!result}, same counters.

    A snapshot from a different loop, parameterization or snapshot
    layout version is rejected as [Error] before any replay happens
    (the key/params digest guard in {!Snapshot}); a structurally
    damaged payload is [Error (Damaged _)]. On [Error] nothing useful
    was restored — fall back to a fresh {!run}. Like {!run}, raises
    {!Watchdog_timeout} (and sanitizer violations) from the replay
    itself. *)

val run_result :
  Flexl0_arch.Config.t ->
  Schedule.t ->
  hierarchy:(backing:Flexl0_mem.Backing.t -> Flexl0_mem.Hierarchy.t) ->
  ?trips:int ->
  ?invocations:int ->
  ?seed:int ->
  ?verify:bool ->
  ?max_cycles:int ->
  ?faults:Fault.plan ->
  ?sanitizer:Flexl0_mem.Sanitizer.mode ->
  ?on_event:(trace_event -> unit) ->
  ?checkpoint:int * (string -> unit) ->
  unit ->
  (result, watchdog) Stdlib.result
(** {!run} with the watchdog surfaced as [Error] instead of an
    exception. *)

val stall_fraction : result -> float
val l0_hit_rate : result -> float option
(** [None] when the hierarchy never probed an L0 buffer. *)
