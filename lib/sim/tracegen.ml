open Flexl0_ir

type t = {
  layout : (int * int) list;
  arrays : (int * Loop.array_info) list;
  seed : int;
  top : int;
}

let create (loop : Loop.t) ~seed =
  let layout = Loop.layout loop in
  let arrays = List.map (fun a -> (a.Loop.array_id, a)) loop.Loop.arrays in
  let top =
    List.fold_left
      (fun acc (id, base) ->
        let info = List.assq id arrays in
        max acc (base + Loop.array_bytes info))
      0 layout
  in
  { layout; arrays; seed; top }

let footprint_bytes t = t.top

let memory_size loop =
  let t = create loop ~seed:0 in
  (* One page of margin keeps edge prefetches in range. *)
  t.top + 4096

(* Stateless splitmix64-style mix so an (instruction, iteration) pair maps
   to the same "random" element no matter in which order addresses are
   queried (the pipelined and sequential replays interleave differently). *)
let hash_mix a b c =
  let open Int64 in
  let z = add (of_int a) (add (mul (of_int b) 0x9E3779B97F4A7C15L)
                            (mul (of_int c) 0xBF58476D1CE4E5B9L)) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

let positive_mod a m = ((a mod m) + m) mod m

let address t ~instr ~iteration =
  match (instr : Instr.t).memref with
  | None -> invalid_arg "Tracegen.address: instruction has no memref"
  | Some r ->
    let base = List.assoc r.Memref.array_id t.layout in
    let info = List.assq r.Memref.array_id t.arrays in
    let elem =
      match r.Memref.stride with
      | Memref.Const s ->
        let start =
          if s < 0 then info.Loop.length - 1 - r.Memref.offset else r.Memref.offset
        in
        positive_mod (start + (s * iteration)) info.Loop.length
      | Memref.Unknown ->
        hash_mix t.seed instr.Instr.id iteration mod info.Loop.length
    in
    base + (elem * r.Memref.elem_bytes)

(* Address generation resolved once per instruction: the layout and
   array-info list lookups, the stride shape and the negative-stride
   start element are all folded into a flat record, so the per-iteration
   address is pure int arithmetic (same formula as {!address}). *)
type compiled = {
  c_unknown : bool;
  c_base : int;
  c_ebytes : int;
  c_len : int;
  c_start : int;  (* constant-stride start element *)
  c_stride : int;
  c_seed : int;
  c_id : int;
}

let compile t ~instr =
  match (instr : Instr.t).memref with
  | None -> invalid_arg "Tracegen.compile: instruction has no memref"
  | Some r ->
    let base = List.assoc r.Memref.array_id t.layout in
    let info = List.assq r.Memref.array_id t.arrays in
    let common =
      { c_unknown = true; c_base = base; c_ebytes = r.Memref.elem_bytes;
        c_len = info.Loop.length; c_start = 0; c_stride = 0; c_seed = t.seed;
        c_id = instr.Instr.id }
    in
    (match r.Memref.stride with
    | Memref.Const s ->
      let start =
        if s < 0 then info.Loop.length - 1 - r.Memref.offset else r.Memref.offset
      in
      { common with c_unknown = false; c_start = start; c_stride = s }
    | Memref.Unknown -> common)

let compiled_address c ~iteration =
  let elem =
    if c.c_unknown then hash_mix c.c_seed c.c_id iteration mod c.c_len
    else positive_mod (c.c_start + (c.c_stride * iteration)) c.c_len
  in
  c.c_base + (elem * c.c_ebytes)
