(** Seeded fault injection for the memory hierarchy.

    A fault plan wraps a {!Flexl0_mem.Hierarchy.t} in a decorator that
    perturbs its behaviour at the interface boundary, so Unified,
    Multivliw and Interleaved all inherit injection unchanged. Faults
    split into two families with opposite contracts:

    - {e coherence-breaking} faults (corrupt-subblock, skip-invalidate,
      skip-psr-replica, corrupt-hint) violate exactly the invariants the
      compiler's hint/coherence machinery guarantees. Running a verified
      schedule under one of these must surface
      [value_mismatches > 0] — they exist to prove the differential
      checker has teeth.
    - {e timing-only} faults (drop-prefetch, spurious-l0-evict,
      extra-latency) may slow the machine down but must never change a
      single loaded value.

    All decisions are drawn from a {!Flexl0_util.Rng} stream seeded by
    the plan, and the decorator draws once per (operation, fault) pair
    whether or not the fault fires, so a given seed yields the same
    injection pattern regardless of how timing shifts. *)

(** Where an [Extra_latency] fault attaches. [L0] delays accesses served
    by an L0/attraction buffer, [L1] delays accesses served by the
    unified or banked L1 (and below), [Bus] delays every access — it
    models interconnect contention. *)
type component = L0 | L1 | Bus

type kind =
  | Drop_prefetch  (** silently drop explicit software prefetches *)
  | Spurious_l0_evict
      (** invalidate the accessing cluster's L0 after an access *)
  | Corrupt_subblock
      (** flip the low byte of a load value served from an L0 buffer *)
  | Skip_invalidate  (** drop [invalidate_buffer] instructions *)
  | Skip_psr_replica  (** drop [Inval_only] replica stores (PSR) *)
  | Extra_latency of { component : component; cycles : int }
  | Corrupt_hint
      (** downgrade a store's [Par_access] hint to [No_access], leaving
          stale L0 copies behind *)

type fault = { kind : kind; prob : float }
type plan = { seed : int; faults : fault list }

val is_coherence_breaking : kind -> bool

val is_timing_only : kind -> bool
(** Complement of {!is_coherence_breaking}. *)

val validate : plan -> (unit, string) result
(** Checks every probability is in [0, 1] and latency cycles are
    non-negative. *)

val fault_to_string : fault -> string

val fault_of_string : string -> (fault, string) result
(** Specs are colon-separated, lowercase, with a trailing optional
    probability (default 1): ["drop-prefetch"], ["corrupt-subblock:0.5"],
    ["extra-latency:bus:50:0.25"]. Inverse of {!fault_to_string}. *)

val plan_of_strings : seed:int -> string list -> (plan, string) result

val instrument : plan -> Flexl0_mem.Hierarchy.t -> Flexl0_mem.Hierarchy.t
(** Wrap a hierarchy. The decorated hierarchy shares the inner counter
    set and additionally bumps [fault_*] counters
    ([fault_dropped_prefetches], [fault_spurious_evicts],
    [fault_corrupted_subblocks], [fault_skipped_invalidates],
    [fault_skipped_replicas], [fault_corrupted_hints],
    [fault_extra_latency_cycles]) each time a fault fires. *)
