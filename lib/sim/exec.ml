open Flexl0_ir
open Flexl0_sched
module Hint = Flexl0_mem.Hint
module Backing = Flexl0_mem.Backing
module Hierarchy = Flexl0_mem.Hierarchy
module Stats = Flexl0_util.Stats

type result = {
  trips : int;
  compute_cycles : int;
  stall_cycles : int;
  total_cycles : int;
  loads : int;
  stores : int;
  value_mismatches : int;
  counters : (string * int) list;
  counter_set : Stats.Counters.t;
}

let ipc_denominator r = max 1 r.total_cycles

type trace_event = {
  ev_time : int;
  ev_iteration : int;
  ev_instr : int;
  ev_kind : [ `Load | `Store | `Prefetch | `Replica ];
  ev_cluster_id : int;
  ev_addr : int;
  ev_served : Hierarchy.served option;
  ev_stall : int;
}

let pp_trace_event ppf e =
  Format.fprintf ppf "@[t=%-6d iter=%-4d %-8s i%-3d cluster %d addr %#x%s%s@]"
    e.ev_time e.ev_iteration
    (match e.ev_kind with
    | `Load -> "load"
    | `Store -> "store"
    | `Prefetch -> "prefetch"
    | `Replica -> "replica")
    e.ev_instr e.ev_cluster_id e.ev_addr
    (match e.ev_served with
    | Some s -> " <- " ^ Hierarchy.served_to_string s
    | None -> "")
    (if e.ev_stall > 0 then Printf.sprintf " (stall %d)" e.ev_stall else "")

(* ------------------------------------------------------------------ *)
(* Compiled event tables.

   The schedule is compiled once per run into flat, slot-major arrays:
   slot [s] owns indices [slot_off.(s) .. slot_off.(s+1) - 1], sorted by
   (start, cluster, order) within the slot — the exact firing order the
   old per-slot event lists had. A tick then walks one contiguous index
   range with no list cells, no closures and no polymorphic compare. *)

(* Event kind codes. *)
let k_load = 0
and k_store = 1
and k_access_nop = 2  (* memory-access instr that is neither load nor store *)
and k_prefetch = 3
and k_replica = 4
and k_nop = 5  (* replica of an instruction without a width: fires nothing *)

type etab = {
  total : int;  (* every scheduled event, including nops (digest input) *)
  max_start : int;
  slot_off : int array;  (* length ii+1: prefix offsets into the arrays below *)
  e_start : int array;
  e_cluster : int array;
  e_kind : int array;
  e_id : int array;  (* instruction id (prefetches: the covered load's index) *)
  e_width : int array;
  e_lat : int array;  (* assumed latency (access events) *)
  e_lead : int array;  (* prefetch lead iterations *)
  e_load : int array;  (* dense load index for the expected table; -1 otherwise *)
  e_hints : Hint.t array;
  e_addr : Tracegen.compiled array;
}

(* One shared hint value for every PSR replica event. *)
let inval_hints = Hint.make ~access:Hint.Inval_only ()

(* Intermediate, pre-sort representation of one scheduled event. *)
type pre = {
  p_start : int;
  p_cluster : int;
  p_order : int;
  p_kind : int;
  p_ins : Instr.t;
  p_id : int;
  p_lat : int;
  p_lead : int;
  p_hints : Hint.t;
}

(* Monomorphic (start, cluster, order) comparator — no polymorphic
   [compare] over allocated tuples, and no surprises if a non-int field
   is ever added to the key. *)
let icmp (a : int) (b : int) = if a < b then -1 else if a > b then 1 else 0

let pre_compare a b =
  let c = icmp a.p_start b.p_start in
  if c <> 0 then c
  else
    let c = icmp a.p_cluster b.p_cluster in
    if c <> 0 then c else icmp a.p_order b.p_order

let compile_events (sch : Schedule.t) trace ~load_ix_by_id =
  let acc = ref [] in
  Array.iteri
    (fun i (p : Schedule.placement) ->
      let ins = Ddg.instr sch.ddg i in
      if Instr.is_memory_access ins then begin
        let kind =
          match ins.Instr.opcode with
          | Opcode.Load _ -> k_load
          | Opcode.Store _ -> k_store
          | _ -> k_access_nop
        in
        acc :=
          { p_start = p.Schedule.start; p_cluster = p.Schedule.cluster;
            p_order = i; p_kind = kind; p_ins = ins; p_id = ins.Instr.id;
            p_lat = p.Schedule.assumed_latency; p_lead = 0;
            p_hints = p.Schedule.hints }
          :: !acc
      end)
    sch.placements;
  List.iter
    (fun (pf : Schedule.prefetch_op) ->
      let ins = Ddg.instr sch.ddg pf.for_instr in
      acc :=
        { p_start = pf.pf_start; p_cluster = pf.pf_cluster;
          p_order = 10_000 + pf.for_instr; p_kind = k_prefetch; p_ins = ins;
          p_id = pf.for_instr; p_lat = 0; p_lead = pf.lead_iterations;
          p_hints = Hint.default }
        :: !acc)
    sch.prefetches;
  List.iter
    (fun (r : Schedule.replica) ->
      let ins = Ddg.instr sch.ddg r.for_store in
      let kind =
        match Opcode.width ins.Instr.opcode with
        | Some _ -> k_replica
        | None -> k_nop
      in
      acc :=
        { p_start = r.rep_start; p_cluster = r.rep_cluster;
          p_order = 20_000 + r.for_store; p_kind = kind; p_ins = ins;
          p_id = ins.Instr.id; p_lat = 0; p_lead = 0; p_hints = inval_hints }
        :: !acc)
    sch.replicas;
  let sorted = Array.of_list (List.stable_sort pre_compare !acc) in
  let n = Array.length sorted in
  let max_start = Array.fold_left (fun m p -> max m p.p_start) 0 sorted in
  let ii = sch.ii in
  (* Counting sort by slot, preserving the global order within each slot. *)
  let slot_off = Array.make (ii + 1) 0 in
  Array.iter
    (fun p -> slot_off.((p.p_start mod ii) + 1) <- slot_off.((p.p_start mod ii) + 1) + 1)
    sorted;
  for s = 1 to ii do
    slot_off.(s) <- slot_off.(s) + slot_off.(s - 1)
  done;
  let cursor = Array.sub slot_off 0 ii in
  let e_start = Array.make n 0 in
  let e_cluster = Array.make n 0 in
  let e_kind = Array.make n 0 in
  let e_id = Array.make n 0 in
  let e_width = Array.make n 0 in
  let e_lat = Array.make n 0 in
  let e_lead = Array.make n 0 in
  let e_load = Array.make n (-1) in
  let e_hints = Array.make n Hint.default in
  let e_addr =
    Array.map (fun p -> Tracegen.compile trace ~instr:p.p_ins) sorted
  in
  (* [e_addr] above is in sorted order; permute it alongside the rest. *)
  let e_addr' = Array.copy e_addr in
  Array.iteri
    (fun i p ->
      let s = p.p_start mod ii in
      let j = cursor.(s) in
      cursor.(s) <- j + 1;
      e_start.(j) <- p.p_start;
      e_cluster.(j) <- p.p_cluster;
      e_kind.(j) <- p.p_kind;
      e_id.(j) <- p.p_id;
      e_lat.(j) <- p.p_lat;
      e_lead.(j) <- p.p_lead;
      e_hints.(j) <- p.p_hints;
      e_addr'.(j) <- e_addr.(i);
      (e_width.(j) <-
        (match p.p_kind with
        | k when k = k_load || k = k_store || k = k_replica -> (
          match Opcode.width p.p_ins.Instr.opcode with
          | Some w -> Opcode.bytes_of_width w
          | None -> 0)
        | k when k = k_prefetch -> (
          match Opcode.width p.p_ins.Instr.opcode with
          | Some w -> Opcode.bytes_of_width w
          | None -> 4)
        | _ -> 0));
      if p.p_kind = k_load && p.p_id < Array.length load_ix_by_id then
        e_load.(j) <- load_ix_by_id.(p.p_id))
    sorted;
  { total = n; max_start; slot_off; e_start; e_cluster; e_kind; e_id; e_width;
    e_lat; e_lead; e_load; e_hints; e_addr = e_addr' }

(* Unique, deterministic value written by store [i] at iteration [k]. *)
let store_value i k =
  Int64.add (Int64.mul (Int64.of_int (i + 1)) 0x1000003L) (Int64.of_int k)

(* The deterministic fill byte depends only on (seed, addr), so the
   image is computed once per seed in a grow-only cache and replayed
   with a single blit: [hash_mix] costs ~10 boxed Int64 ops per byte,
   and every run fills two stores (machine + reference). The cache is
   bounded — fuzz campaigns cycle through many seeds. *)
let image_cache : (int, Bytes.t ref) Hashtbl.t = Hashtbl.create 8
let image_cache_max = 16

(* [c] is 17 (initial fill) or 23 (interlude scramble), so [2s + (c=23)]
   keys the cache injectively. *)
let fill_image ~salt ~c n =
  let key = (2 * salt) + if c = 23 then 1 else 0 in
  let r =
    match Hashtbl.find_opt image_cache key with
    | Some r -> r
    | None ->
      if Hashtbl.length image_cache >= image_cache_max then
        Hashtbl.reset image_cache;
      let r = ref Bytes.empty in
      Hashtbl.add image_cache key r;
      r
  in
  let have = Bytes.length !r in
  if have < n then begin
    let fresh = Bytes.create n in
    Bytes.blit !r 0 fresh 0 have;
    for addr = have to n - 1 do
      Bytes.unsafe_set fresh addr
        (Char.unsafe_chr (Tracegen.hash_mix salt addr c land 0xFF))
    done;
    r := fresh
  end;
  !r

let init_memory backing ~seed =
  Backing.fill_from backing (fill_image ~salt:seed ~c:17 (Backing.size backing))

(* Deterministic inter-invocation scramble: models the rest of the
   benchmark dirtying memory between two invocations of the loop.
   Applied identically to the simulated backing and the reference
   replay, so it is invisible to a coherent machine — but it makes a
   stale L0 entry (e.g. after a skipped [invalidate_buffer])
   observable, where the invocation-independent [store_value] would
   otherwise keep it accidentally correct. Timing is unaffected: cache
   tags are not touched and loaded values never feed back into
   addresses or schedules. Salt 23 keeps the stream disjoint from
   [init_memory]'s salt 17. *)
let interlude_scramble mem ~seed ~inv =
  let salt = seed + ((inv + 1) * 1_000_003) in
  Backing.fill_from mem (fill_image ~salt ~c:23 (Backing.size mem))

(* Dense numbering of the loop's load instructions: [load_ix_by_id.(id)]
   is the load's row in the expected-value table, -1 for non-loads. *)
let compile_loads (sch : Schedule.t) =
  let accesses = Loop.memory_accesses sch.loop in
  let max_id =
    List.fold_left (fun m (i : Instr.t) -> max m i.Instr.id) (-1) accesses
  in
  let load_ix_by_id = Array.make (max_id + 2) (-1) in
  let n_loads = ref 0 in
  List.iter
    (fun (i : Instr.t) ->
      match i.Instr.opcode with
      | Opcode.Load _ ->
        if load_ix_by_id.(i.Instr.id) < 0 then begin
          load_ix_by_id.(i.Instr.id) <- !n_loads;
          incr n_loads
        end
      | _ -> ())
    accesses;
  (accesses, load_ix_by_id, !n_loads)

type expected =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let expected_index ~n_loads ~trips ~inv ~load_ix ~k =
  (((inv * n_loads) + load_ix) * trips) + k

(* Sequential reference replay: expected value of every dynamic load, in
   a dense (invocation, load, iteration) table — no per-probe key
   allocation when the run checks loaded values against it. *)
let reference_loads (sch : Schedule.t) trace ~trips ~invocations ~seed
    ~accesses ~load_ix_by_id ~n_loads : expected =
  let size = Tracegen.memory_size sch.loop in
  let ref_mem = Backing.create ~size in
  init_memory ref_mem ~seed;
  let expected =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
      (max 1 (invocations * n_loads * trips))
  in
  (* Compile the sequential access list once: kind, width, dense load
     index and address program per access, in program order. *)
  let arr = Array.of_list accesses in
  let n_acc = Array.length arr in
  let a_kind = Array.make n_acc k_access_nop in
  let a_width = Array.make n_acc 0 in
  let a_id = Array.make n_acc 0 in
  let a_load = Array.make n_acc (-1) in
  let a_addr = Array.map (fun ins -> Tracegen.compile trace ~instr:ins) arr in
  Array.iteri
    (fun i (ins : Instr.t) ->
      a_id.(i) <- ins.Instr.id;
      match ins.Instr.opcode with
      | Opcode.Load w ->
        a_kind.(i) <- k_load;
        a_width.(i) <- Opcode.bytes_of_width w;
        a_load.(i) <- load_ix_by_id.(ins.Instr.id)
      | Opcode.Store w ->
        a_kind.(i) <- k_store;
        a_width.(i) <- Opcode.bytes_of_width w
      | _ -> ())
    arr;
  for inv = 0 to invocations - 1 do
    for k = 0 to trips - 1 do
      for i = 0 to n_acc - 1 do
        let kind = Array.unsafe_get a_kind i in
        if kind = k_load then begin
          let addr =
            Tracegen.compiled_address (Array.unsafe_get a_addr i) ~iteration:k
          in
          let lix = Array.unsafe_get a_load i in
          if lix >= 0 then
            Bigarray.Array1.unsafe_set expected
              (expected_index ~n_loads ~trips ~inv ~load_ix:lix ~k)
              (Backing.read ref_mem ~addr ~width:(Array.unsafe_get a_width i))
        end
        else if kind = k_store then begin
          let addr =
            Tracegen.compiled_address (Array.unsafe_get a_addr i) ~iteration:k
          in
          Backing.write ref_mem ~addr ~width:(Array.unsafe_get a_width i)
            (store_value (Array.unsafe_get a_id i) k)
        end
      done
    done;
    if inv < invocations - 1 then interlude_scramble ref_mem ~seed ~inv
  done;
  expected

let no_expected : expected =
  Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 1

let default_trips (loop : Loop.t) = min loop.Loop.trip_count 2048

type watchdog = { wd_loop : string; wd_elapsed : int; wd_limit : int }

exception Watchdog_timeout of watchdog

let watchdog_message { wd_loop; wd_elapsed; wd_limit } =
  Printf.sprintf "%s ran for %d cycles, past the %d-cycle watchdog limit"
    wd_loop wd_elapsed wd_limit

let () =
  Printexc.register_printer (function
    | Watchdog_timeout wd -> Some ("Exec.Watchdog_timeout: " ^ watchdog_message wd)
    | _ -> None)

(* A healthy run costs [compute + stall] cycles with stall bounded by a
   small multiple of compute; 1000x compute plus a fixed grace covers
   every legitimate configuration with orders of magnitude to spare. *)
let default_max_cycles ~invocation_span ~invocations =
  (1000 * ((invocation_span * invocations) + 1)) + 1_000_000

(* Everything a tick needs, built deterministically from the run's
   arguments by {!setup}. Splitting it from the mutable {!Snapshot.cursor}
   is what makes checkpointing cheap: the runtime is rebuilt on resume
   from the same arguments, only the cursor and the hierarchy's flat
   state travel in the snapshot. *)
type runtime = {
  rt_cfg : Flexl0_arch.Config.t;
  rt_sch : Schedule.t;
  rt_trips : int;
  rt_invocations : int;
  rt_seed : int;
  rt_verify : bool;
  rt_backing : Backing.t;
  rt_hier : Hierarchy.t;
  rt_expected : expected;
  rt_n_loads : int;
  rt_tab : etab;
  rt_horizon : int;
  rt_invocation_span : int;
  rt_limit : int;
  rt_on_event : (trace_event -> unit) option;
  rt_trace : Tracegen.t;
  rt_key : string;
  rt_params : string;
}

let setup (cfg : Flexl0_arch.Config.t) (sch : Schedule.t) ~hierarchy ~trips
    ~invocations ~seed ~verify ~max_cycles ~faults ~sanitizer ~on_event =
  let trips = match trips with Some t -> t | None -> default_trips sch.loop in
  let trace = Tracegen.create sch.loop ~seed in
  let size = Tracegen.memory_size sch.loop in
  let backing = Backing.create ~size in
  init_memory backing ~seed;
  let hier = hierarchy ~backing in
  let hier =
    match faults with Some plan -> Fault.instrument plan hier | None -> hier
  in
  (* Sanitizer outermost: it must observe fault-perturbed behaviour. *)
  let hier = Flexl0_mem.Sanitizer.wrap sanitizer hier in
  let accesses, load_ix_by_id, n_loads = compile_loads sch in
  let expected =
    if verify then
      reference_loads sch trace ~trips ~invocations ~seed ~accesses
        ~load_ix_by_id ~n_loads
    else no_expected
  in
  let tab = compile_events sch trace ~load_ix_by_id in
  let horizon = ((trips - 1) * sch.ii) + tab.max_start in
  let invocation_span = Schedule.compute_cycles sch ~trips in
  let limit =
    match max_cycles with
    | Some m -> m
    | None -> default_max_cycles ~invocation_span ~invocations
  in
  let key = sch.loop.Loop.name in
  (* Digest of every argument that shapes replay. A snapshot taken under
     one configuration must never restore into another — the cursor
     would point into a different event stream and the divergence would
     be silent. The schedule itself may hold closures, so the digest is
     over its observable shape, not a [Marshal] of it. *)
  let params =
    let fault_part =
      match faults with
      | None -> "none"
      | Some (p : Fault.plan) ->
        string_of_int p.seed ^ ":"
        ^ String.concat "," (List.map Fault.fault_to_string p.faults)
    in
    Digest.to_hex
      (Digest.string
         (String.concat "|"
            [ key; string_of_int sch.ii; string_of_int trips;
              string_of_int invocations; string_of_int seed;
              string_of_bool verify; hier.Hierarchy.name;
              string_of_int tab.total; string_of_int horizon;
              string_of_int invocation_span; string_of_int limit;
              Flexl0_mem.Sanitizer.mode_to_string sanitizer; fault_part ]))
  in
  { rt_cfg = cfg; rt_sch = sch; rt_trips = trips;
    rt_invocations = invocations; rt_seed = seed; rt_verify = verify;
    rt_backing = backing; rt_hier = hier; rt_expected = expected;
    rt_n_loads = n_loads; rt_tab = tab; rt_horizon = horizon;
    rt_invocation_span = invocation_span; rt_limit = limit;
    rt_on_event = on_event; rt_trace = trace; rt_key = key;
    rt_params = params }

(* Fire event [j] of the compiled table at iteration [k]; returns the
   stall it causes. Allocation here is limited to what the hierarchy
   itself returns (one outcome record per access) — trace records exist
   only when an [on_event] observer is attached. *)
let fire rt (cur : Snapshot.cursor) ~inv now j k =
  let tab = rt.rt_tab in
  let hier = rt.rt_hier in
  let kind = Array.unsafe_get tab.e_kind j in
  let cluster = Array.unsafe_get tab.e_cluster j in
  if kind = k_load then begin
    cur.Snapshot.loads <- cur.Snapshot.loads + 1;
    let addr =
      Tracegen.compiled_address (Array.unsafe_get tab.e_addr j) ~iteration:k
    in
    let width = Array.unsafe_get tab.e_width j in
    let outcome =
      hier.Hierarchy.load ~now ~cluster ~addr ~width
        ~hints:(Array.unsafe_get tab.e_hints j)
    in
    if rt.rt_verify then begin
      let lix = Array.unsafe_get tab.e_load j in
      if
        lix < 0
        || Bigarray.Array1.unsafe_get rt.rt_expected
             (expected_index ~n_loads:rt.rt_n_loads ~trips:rt.rt_trips ~inv
                ~load_ix:lix ~k)
           <> outcome.Hierarchy.value
      then cur.Snapshot.mismatches <- cur.Snapshot.mismatches + 1
    end;
    let deadline = now + Array.unsafe_get tab.e_lat j in
    let stall = max 0 (outcome.Hierarchy.ready_at - deadline) in
    (match rt.rt_on_event with
    | None -> ()
    | Some f ->
      f
        { ev_time = now; ev_iteration = k;
          ev_instr = Array.unsafe_get tab.e_id j; ev_kind = `Load;
          ev_cluster_id = cluster; ev_addr = addr;
          ev_served = Some outcome.Hierarchy.served; ev_stall = stall });
    stall
  end
  else if kind = k_store then begin
    cur.Snapshot.stores <- cur.Snapshot.stores + 1;
    let addr =
      Tracegen.compiled_address (Array.unsafe_get tab.e_addr j) ~iteration:k
    in
    let width = Array.unsafe_get tab.e_width j in
    let id = Array.unsafe_get tab.e_id j in
    let outcome =
      hier.Hierarchy.store ~now ~cluster ~addr ~width
        ~value:(store_value id k) ~hints:(Array.unsafe_get tab.e_hints j)
    in
    let deadline = now + Array.unsafe_get tab.e_lat j in
    let stall = max 0 (outcome.Hierarchy.ready_at - deadline) in
    (match rt.rt_on_event with
    | None -> ()
    | Some f ->
      f
        { ev_time = now; ev_iteration = k; ev_instr = id; ev_kind = `Store;
          ev_cluster_id = cluster; ev_addr = addr;
          ev_served = Some outcome.Hierarchy.served; ev_stall = stall });
    stall
  end
  else if kind = k_prefetch then begin
    (* Runs [lead_iterations] ahead of the load it covers. *)
    let future = k + Array.unsafe_get tab.e_lead j in
    let addr =
      Tracegen.compiled_address (Array.unsafe_get tab.e_addr j)
        ~iteration:future
    in
    hier.Hierarchy.prefetch ~now ~cluster ~addr
      ~width:(Array.unsafe_get tab.e_width j);
    (match rt.rt_on_event with
    | None -> ()
    | Some f ->
      f
        { ev_time = now; ev_iteration = k;
          ev_instr = Array.unsafe_get tab.e_id j; ev_kind = `Prefetch;
          ev_cluster_id = cluster; ev_addr = addr; ev_served = None;
          ev_stall = 0 });
    0
  end
  else if kind = k_replica then begin
    let addr =
      Tracegen.compiled_address (Array.unsafe_get tab.e_addr j) ~iteration:k
    in
    let width = Array.unsafe_get tab.e_width j in
    ignore
      (hier.Hierarchy.store ~now ~cluster ~addr ~width ~value:0L
         ~hints:(Array.unsafe_get tab.e_hints j));
    (match rt.rt_on_event with
    | None -> ()
    | Some f ->
      f
        { ev_time = now; ev_iteration = k;
          ev_instr = Array.unsafe_get tab.e_id j; ev_kind = `Replica;
          ev_cluster_id = cluster; ev_addr = addr; ev_served = None;
          ev_stall = 0 });
    0
  end
  else 0

(* One tick = one (invocation, t) position. The end-of-invocation work —
   flushing every L0 buffer (inter-loop coherence, Section 4.1) and the
   inter-invocation memory scramble — is folded into the tick at
   [t = horizon], so *every* tick boundary is a clean resume point: the
   cursor plus the hierarchy's flat state fully determine the rest of
   the run. *)
let exec_tick rt (cur : Snapshot.cursor) =
  let sch = rt.rt_sch in
  let tab = rt.rt_tab in
  let inv = cur.Snapshot.cur_inv and t = cur.Snapshot.cur_t in
  let offset = inv * rt.rt_invocation_span in
  let slot = t mod sch.ii in
  let cycle_stall = ref 0 in
  let lo = Array.unsafe_get tab.slot_off slot in
  let hi = Array.unsafe_get tab.slot_off (slot + 1) in
  for j = lo to hi - 1 do
    let start = Array.unsafe_get tab.e_start j in
    if t >= start then begin
      let k = (t - start) / sch.ii in
      if k < rt.rt_trips then begin
        let now = offset + t + cur.Snapshot.cum_stall in
        let stall = fire rt cur ~inv now j k in
        if stall > !cycle_stall then cycle_stall := stall
      end
    end
  done;
  cur.Snapshot.cum_stall <- cur.Snapshot.cum_stall + !cycle_stall;
  let elapsed = offset + t + cur.Snapshot.cum_stall in
  if elapsed > rt.rt_limit then
    raise
      (Watchdog_timeout
         { wd_loop = sch.loop.Loop.name; wd_elapsed = elapsed;
           wd_limit = rt.rt_limit });
  if t = rt.rt_horizon then begin
    for c = 0 to rt.rt_cfg.num_clusters - 1 do
      rt.rt_hier.Hierarchy.invalidate ~cluster:c
    done;
    if inv < rt.rt_invocations - 1 then
      interlude_scramble rt.rt_backing ~seed:rt.rt_seed ~inv;
    cur.Snapshot.cur_inv <- inv + 1;
    cur.Snapshot.cur_t <- 0
  end
  else cur.Snapshot.cur_t <- t + 1;
  cur.Snapshot.ticks <- cur.Snapshot.ticks + 1

let finished rt (cur : Snapshot.cursor) =
  cur.Snapshot.cur_inv >= rt.rt_invocations

let drive rt (cur : Snapshot.cursor) ~checkpoint =
  (match checkpoint with
  | Some (interval, _) when interval <= 0 ->
    invalid_arg "Exec: checkpoint interval must be positive"
  | _ -> ());
  while not (finished rt cur) do
    exec_tick rt cur;
    match checkpoint with
    | Some (interval, sink)
      when cur.Snapshot.ticks mod interval = 0 && not (finished rt cur) ->
      sink (Snapshot.encode ~key:rt.rt_key ~params:rt.rt_params cur rt.rt_hier)
    | _ -> ()
  done;
  let compute_cycles = rt.rt_invocation_span * rt.rt_invocations in
  {
    trips = rt.rt_trips;
    compute_cycles;
    stall_cycles = cur.Snapshot.cum_stall;
    total_cycles = compute_cycles + cur.Snapshot.cum_stall;
    loads = cur.Snapshot.loads;
    stores = cur.Snapshot.stores;
    value_mismatches = cur.Snapshot.mismatches;
    counters = Stats.Counters.to_list rt.rt_hier.Hierarchy.counters;
    counter_set = rt.rt_hier.Hierarchy.counters;
  }

let run (cfg : Flexl0_arch.Config.t) (sch : Schedule.t) ~hierarchy ?trips
    ?(invocations = 1) ?(seed = 42) ?(verify = true) ?max_cycles ?faults
    ?(sanitizer = Flexl0_mem.Sanitizer.Off) ?on_event ?checkpoint () =
  let rt =
    setup cfg sch ~hierarchy ~trips ~invocations ~seed ~verify ~max_cycles
      ~faults ~sanitizer ~on_event
  in
  drive rt (Snapshot.fresh_cursor ()) ~checkpoint

let resume_from payload (cfg : Flexl0_arch.Config.t) (sch : Schedule.t)
    ~hierarchy ?trips ?(invocations = 1) ?(seed = 42) ?(verify = true)
    ?max_cycles ?faults ?(sanitizer = Flexl0_mem.Sanitizer.Off) ?on_event
    ?checkpoint () =
  let rt =
    setup cfg sch ~hierarchy ~trips ~invocations ~seed ~verify ~max_cycles
      ~faults ~sanitizer ~on_event
  in
  match Snapshot.restore payload ~key:rt.rt_key ~params:rt.rt_params rt.rt_hier with
  | Error _ as e -> e
  | Ok cur -> Ok (drive rt cur ~checkpoint)

let run_result cfg sch ~hierarchy ?trips ?invocations ?seed ?verify ?max_cycles
    ?faults ?sanitizer ?on_event ?checkpoint () =
  match
    run cfg sch ~hierarchy ?trips ?invocations ?seed ?verify ?max_cycles
      ?faults ?sanitizer ?on_event ?checkpoint ()
  with
  | r -> Ok r
  | exception Watchdog_timeout wd -> Error wd

let stall_fraction r =
  if r.total_cycles = 0 then 0.0
  else float_of_int r.stall_cycles /. float_of_int r.total_cycles

let l0_hit_rate r =
  let get name = Option.value ~default:0 (Stats.Counters.find r.counter_set name) in
  let hits = get "l0_load_hits" and misses = get "l0_load_misses" in
  if hits + misses = 0 then None
  else Some (float_of_int hits /. float_of_int (hits + misses))
