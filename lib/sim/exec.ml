open Flexl0_ir
open Flexl0_sched
module Hint = Flexl0_mem.Hint
module Backing = Flexl0_mem.Backing
module Hierarchy = Flexl0_mem.Hierarchy
module Stats = Flexl0_util.Stats

type result = {
  trips : int;
  compute_cycles : int;
  stall_cycles : int;
  total_cycles : int;
  loads : int;
  stores : int;
  value_mismatches : int;
  counters : (string * int) list;
  counter_set : Stats.Counters.t;
}

let ipc_denominator r = max 1 r.total_cycles

type trace_event = {
  ev_time : int;
  ev_iteration : int;
  ev_instr : int;
  ev_kind : [ `Load | `Store | `Prefetch | `Replica ];
  ev_cluster_id : int;
  ev_addr : int;
  ev_served : Hierarchy.served option;
  ev_stall : int;
}

let pp_trace_event ppf e =
  Format.fprintf ppf "@[t=%-6d iter=%-4d %-8s i%-3d cluster %d addr %#x%s%s@]"
    e.ev_time e.ev_iteration
    (match e.ev_kind with
    | `Load -> "load"
    | `Store -> "store"
    | `Prefetch -> "prefetch"
    | `Replica -> "replica")
    e.ev_instr e.ev_cluster_id e.ev_addr
    (match e.ev_served with
    | Some s -> " <- " ^ Hierarchy.served_to_string s
    | None -> "")
    (if e.ev_stall > 0 then Printf.sprintf " (stall %d)" e.ev_stall else "")

type event_kind =
  | Ev_access of Instr.t * Schedule.placement
  | Ev_prefetch of Instr.t * Schedule.prefetch_op
  | Ev_replica of Instr.t * Schedule.replica

type event = { ev_start : int; ev_cluster : int; ev_order : int; kind : event_kind }

let events_of (sch : Schedule.t) =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      let ins = Ddg.instr sch.ddg i in
      if Instr.is_memory_access ins then
        acc :=
          { ev_start = p.Schedule.start; ev_cluster = p.Schedule.cluster;
            ev_order = i; kind = Ev_access (ins, p) }
          :: !acc)
    sch.placements;
  List.iter
    (fun (pf : Schedule.prefetch_op) ->
      let ins = Ddg.instr sch.ddg pf.for_instr in
      acc :=
        { ev_start = pf.pf_start; ev_cluster = pf.pf_cluster;
          ev_order = 10_000 + pf.for_instr; kind = Ev_prefetch (ins, pf) }
        :: !acc)
    sch.prefetches;
  List.iter
    (fun (r : Schedule.replica) ->
      let ins = Ddg.instr sch.ddg r.for_store in
      acc :=
        { ev_start = r.rep_start; ev_cluster = r.rep_cluster;
          ev_order = 20_000 + r.for_store; kind = Ev_replica (ins, r) }
        :: !acc)
    sch.replicas;
  List.sort (fun a b -> compare (a.ev_start, a.ev_cluster, a.ev_order)
                (b.ev_start, b.ev_cluster, b.ev_order))
    !acc

(* Unique, deterministic value written by store [i] at iteration [k]. *)
let store_value i k =
  Int64.add (Int64.mul (Int64.of_int (i + 1)) 0x1000003L) (Int64.of_int k)

let init_memory backing ~seed =
  for addr = 0 to Backing.size backing - 1 do
    Backing.write8 backing ~addr (Tracegen.hash_mix seed addr 17)
  done

(* Deterministic inter-invocation scramble: models the rest of the
   benchmark dirtying memory between two invocations of the loop.
   Applied identically to the simulated backing and the reference
   replay, so it is invisible to a coherent machine — but it makes a
   stale L0 entry (e.g. after a skipped [invalidate_buffer])
   observable, where the invocation-independent [store_value] would
   otherwise keep it accidentally correct. Timing is unaffected: cache
   tags are not touched and loaded values never feed back into
   addresses or schedules. Salt 23 keeps the stream disjoint from
   [init_memory]'s salt 17. *)
let interlude_scramble mem ~seed ~inv =
  let salt = seed + ((inv + 1) * 1_000_003) in
  for addr = 0 to Backing.size mem - 1 do
    Backing.write8 mem ~addr (Tracegen.hash_mix salt addr 23)
  done

(* Sequential reference replay: expected value of every dynamic load,
   keyed by (invocation, instruction, iteration). *)
let reference_loads (sch : Schedule.t) trace ~trips ~invocations ~seed =
  let size = Tracegen.memory_size sch.loop in
  let ref_mem = Backing.create ~size in
  init_memory ref_mem ~seed;
  let expected = Hashtbl.create (trips * 4) in
  let accesses = Loop.memory_accesses sch.loop in
  for inv = 0 to invocations - 1 do
    for k = 0 to trips - 1 do
      List.iter
        (fun (ins : Instr.t) ->
          let addr = Tracegen.address trace ~instr:ins ~iteration:k in
          match ins.Instr.opcode with
          | Opcode.Load w ->
            let width = Opcode.bytes_of_width w in
            Hashtbl.replace expected (inv, ins.Instr.id, k)
              (Backing.read ref_mem ~addr ~width)
          | Opcode.Store w ->
            Backing.write ref_mem ~addr ~width:(Opcode.bytes_of_width w)
              (store_value ins.Instr.id k)
          | _ -> ())
        accesses
    done;
    if inv < invocations - 1 then interlude_scramble ref_mem ~seed ~inv
  done;
  expected

let default_trips (loop : Loop.t) = min loop.Loop.trip_count 2048

type watchdog = { wd_loop : string; wd_elapsed : int; wd_limit : int }

exception Watchdog_timeout of watchdog

let watchdog_message { wd_loop; wd_elapsed; wd_limit } =
  Printf.sprintf "%s ran for %d cycles, past the %d-cycle watchdog limit"
    wd_loop wd_elapsed wd_limit

let () =
  Printexc.register_printer (function
    | Watchdog_timeout wd -> Some ("Exec.Watchdog_timeout: " ^ watchdog_message wd)
    | _ -> None)

(* A healthy run costs [compute + stall] cycles with stall bounded by a
   small multiple of compute; 1000x compute plus a fixed grace covers
   every legitimate configuration with orders of magnitude to spare. *)
let default_max_cycles ~invocation_span ~invocations =
  (1000 * ((invocation_span * invocations) + 1)) + 1_000_000

let run (cfg : Flexl0_arch.Config.t) (sch : Schedule.t) ~hierarchy ?trips
    ?(invocations = 1) ?(seed = 42) ?(verify = true) ?max_cycles ?faults
    ?(sanitizer = Flexl0_mem.Sanitizer.Off)
    ?(on_event = fun (_ : trace_event) -> ()) () =
  let trips = match trips with Some t -> t | None -> default_trips sch.loop in
  let trace = Tracegen.create sch.loop ~seed in
  let size = Tracegen.memory_size sch.loop in
  let backing = Backing.create ~size in
  init_memory backing ~seed;
  let hier = hierarchy ~backing in
  let hier =
    match faults with Some plan -> Fault.instrument plan hier | None -> hier
  in
  (* Sanitizer outermost: it must observe fault-perturbed behaviour. *)
  let hier = Flexl0_mem.Sanitizer.wrap sanitizer hier in
  let expected =
    if verify then reference_loads sch trace ~trips ~invocations ~seed
    else Hashtbl.create 1
  in
  let events = events_of sch in
  let by_slot = Array.make sch.ii [] in
  List.iter
    (fun e -> by_slot.(e.ev_start mod sch.ii) <- e :: by_slot.(e.ev_start mod sch.ii))
    events;
  Array.iteri (fun i l -> by_slot.(i) <- List.rev l) by_slot;
  let max_start = List.fold_left (fun acc e -> max acc e.ev_start) 0 events in
  let horizon = ((trips - 1) * sch.ii) + max_start in
  let cum_stall = ref 0 in
  let loads = ref 0 and stores = ref 0 and mismatches = ref 0 in
  let fire ~inv now (ev : event) k =
    match ev.kind with
    | Ev_access (ins, p) -> (
      let addr = Tracegen.address trace ~instr:ins ~iteration:k in
      match ins.Instr.opcode with
      | Opcode.Load w ->
        incr loads;
        let width = Opcode.bytes_of_width w in
        let outcome =
          hier.Hierarchy.load ~now ~cluster:ev.ev_cluster ~addr ~width
            ~hints:p.Schedule.hints
        in
        if verify then begin
          match Hashtbl.find_opt expected (inv, ins.Instr.id, k) with
          | Some v when v <> outcome.Hierarchy.value -> incr mismatches
          | Some _ -> ()
          | None -> incr mismatches
        end;
        let deadline = now + p.Schedule.assumed_latency in
        let stall = max 0 (outcome.Hierarchy.ready_at - deadline) in
        on_event
          { ev_time = now; ev_iteration = k; ev_instr = ins.Instr.id;
            ev_kind = `Load; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
            ev_served = Some outcome.Hierarchy.served; ev_stall = stall };
        stall
      | Opcode.Store w ->
        incr stores;
        let width = Opcode.bytes_of_width w in
        let outcome =
          hier.Hierarchy.store ~now ~cluster:ev.ev_cluster ~addr ~width
            ~value:(store_value ins.Instr.id k) ~hints:p.Schedule.hints
        in
        let deadline = now + p.Schedule.assumed_latency in
        let stall = max 0 (outcome.Hierarchy.ready_at - deadline) in
        on_event
          { ev_time = now; ev_iteration = k; ev_instr = ins.Instr.id;
            ev_kind = `Store; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
            ev_served = Some outcome.Hierarchy.served; ev_stall = stall };
        stall
      | _ -> 0)
    | Ev_prefetch (ins, pf) ->
      (* Runs [lead_iterations] ahead of the load it covers. *)
      let future = k + pf.lead_iterations in
      let addr = Tracegen.address trace ~instr:ins ~iteration:future in
      let width =
        match Opcode.width ins.Instr.opcode with
        | Some w -> Opcode.bytes_of_width w
        | None -> 4
      in
      hier.Hierarchy.prefetch ~now ~cluster:ev.ev_cluster ~addr ~width;
      on_event
        { ev_time = now; ev_iteration = k; ev_instr = pf.for_instr;
          ev_kind = `Prefetch; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
          ev_served = None; ev_stall = 0 };
      0
    | Ev_replica (ins, _r) -> (
      let addr = Tracegen.address trace ~instr:ins ~iteration:k in
      match Opcode.width ins.Instr.opcode with
      | Some w ->
        let width = Opcode.bytes_of_width w in
        let outcome =
          hier.Hierarchy.store ~now ~cluster:ev.ev_cluster ~addr ~width
            ~value:0L
            ~hints:(Hint.make ~access:Hint.Inval_only ())
        in
        ignore outcome;
        on_event
          { ev_time = now; ev_iteration = k; ev_instr = ins.Instr.id;
            ev_kind = `Replica; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
            ev_served = None; ev_stall = 0 };
        0
      | None -> 0)
  in
  let invocation_span = Schedule.compute_cycles sch ~trips in
  let limit =
    match max_cycles with
    | Some m -> m
    | None -> default_max_cycles ~invocation_span ~invocations
  in
  for inv = 0 to invocations - 1 do
    let offset = inv * invocation_span in
    for t = 0 to horizon do
      let slot = t mod sch.ii in
      let cycle_stall = ref 0 in
      List.iter
        (fun ev ->
          if t >= ev.ev_start then begin
            let k = (t - ev.ev_start) / sch.ii in
            if k < trips then begin
              let now = offset + t + !cum_stall in
              let stall = fire ~inv now ev k in
              if stall > !cycle_stall then cycle_stall := stall
            end
          end)
        by_slot.(slot);
      cum_stall := !cum_stall + !cycle_stall;
      let elapsed = offset + t + !cum_stall in
      if elapsed > limit then
        raise
          (Watchdog_timeout
             { wd_loop = sch.loop.Loop.name; wd_elapsed = elapsed;
               wd_limit = limit })
    done;
    (* Inter-loop coherence: flush every L0 buffer between invocations
       and at loop exit (Section 4.1). *)
    for c = 0 to cfg.num_clusters - 1 do
      hier.Hierarchy.invalidate ~cluster:c
    done;
    if inv < invocations - 1 then interlude_scramble backing ~seed ~inv
  done;
  let compute_cycles = invocation_span * invocations in
  {
    trips;
    compute_cycles;
    stall_cycles = !cum_stall;
    total_cycles = compute_cycles + !cum_stall;
    loads = !loads;
    stores = !stores;
    value_mismatches = !mismatches;
    counters = Stats.Counters.to_list hier.Hierarchy.counters;
    counter_set = hier.Hierarchy.counters;
  }

let run_result cfg sch ~hierarchy ?trips ?invocations ?seed ?verify ?max_cycles
    ?faults ?sanitizer ?on_event () =
  match
    run cfg sch ~hierarchy ?trips ?invocations ?seed ?verify ?max_cycles
      ?faults ?sanitizer ?on_event ()
  with
  | r -> Ok r
  | exception Watchdog_timeout wd -> Error wd

let stall_fraction r =
  if r.total_cycles = 0 then 0.0
  else float_of_int r.stall_cycles /. float_of_int r.total_cycles

let l0_hit_rate r =
  let get name = Option.value ~default:0 (Stats.Counters.find r.counter_set name) in
  let hits = get "l0_load_hits" and misses = get "l0_load_misses" in
  if hits + misses = 0 then None
  else Some (float_of_int hits /. float_of_int (hits + misses))
