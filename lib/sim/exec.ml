open Flexl0_ir
open Flexl0_sched
module Hint = Flexl0_mem.Hint
module Backing = Flexl0_mem.Backing
module Hierarchy = Flexl0_mem.Hierarchy
module Stats = Flexl0_util.Stats

type result = {
  trips : int;
  compute_cycles : int;
  stall_cycles : int;
  total_cycles : int;
  loads : int;
  stores : int;
  value_mismatches : int;
  counters : (string * int) list;
  counter_set : Stats.Counters.t;
}

let ipc_denominator r = max 1 r.total_cycles

type trace_event = {
  ev_time : int;
  ev_iteration : int;
  ev_instr : int;
  ev_kind : [ `Load | `Store | `Prefetch | `Replica ];
  ev_cluster_id : int;
  ev_addr : int;
  ev_served : Hierarchy.served option;
  ev_stall : int;
}

let pp_trace_event ppf e =
  Format.fprintf ppf "@[t=%-6d iter=%-4d %-8s i%-3d cluster %d addr %#x%s%s@]"
    e.ev_time e.ev_iteration
    (match e.ev_kind with
    | `Load -> "load"
    | `Store -> "store"
    | `Prefetch -> "prefetch"
    | `Replica -> "replica")
    e.ev_instr e.ev_cluster_id e.ev_addr
    (match e.ev_served with
    | Some s -> " <- " ^ Hierarchy.served_to_string s
    | None -> "")
    (if e.ev_stall > 0 then Printf.sprintf " (stall %d)" e.ev_stall else "")

type event_kind =
  | Ev_access of Instr.t * Schedule.placement
  | Ev_prefetch of Instr.t * Schedule.prefetch_op
  | Ev_replica of Instr.t * Schedule.replica

type event = { ev_start : int; ev_cluster : int; ev_order : int; kind : event_kind }

let events_of (sch : Schedule.t) =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      let ins = Ddg.instr sch.ddg i in
      if Instr.is_memory_access ins then
        acc :=
          { ev_start = p.Schedule.start; ev_cluster = p.Schedule.cluster;
            ev_order = i; kind = Ev_access (ins, p) }
          :: !acc)
    sch.placements;
  List.iter
    (fun (pf : Schedule.prefetch_op) ->
      let ins = Ddg.instr sch.ddg pf.for_instr in
      acc :=
        { ev_start = pf.pf_start; ev_cluster = pf.pf_cluster;
          ev_order = 10_000 + pf.for_instr; kind = Ev_prefetch (ins, pf) }
        :: !acc)
    sch.prefetches;
  List.iter
    (fun (r : Schedule.replica) ->
      let ins = Ddg.instr sch.ddg r.for_store in
      acc :=
        { ev_start = r.rep_start; ev_cluster = r.rep_cluster;
          ev_order = 20_000 + r.for_store; kind = Ev_replica (ins, r) }
        :: !acc)
    sch.replicas;
  List.sort (fun a b -> compare (a.ev_start, a.ev_cluster, a.ev_order)
                (b.ev_start, b.ev_cluster, b.ev_order))
    !acc

(* Unique, deterministic value written by store [i] at iteration [k]. *)
let store_value i k =
  Int64.add (Int64.mul (Int64.of_int (i + 1)) 0x1000003L) (Int64.of_int k)

let init_memory backing ~seed =
  for addr = 0 to Backing.size backing - 1 do
    Backing.write8 backing ~addr (Tracegen.hash_mix seed addr 17)
  done

(* Deterministic inter-invocation scramble: models the rest of the
   benchmark dirtying memory between two invocations of the loop.
   Applied identically to the simulated backing and the reference
   replay, so it is invisible to a coherent machine — but it makes a
   stale L0 entry (e.g. after a skipped [invalidate_buffer])
   observable, where the invocation-independent [store_value] would
   otherwise keep it accidentally correct. Timing is unaffected: cache
   tags are not touched and loaded values never feed back into
   addresses or schedules. Salt 23 keeps the stream disjoint from
   [init_memory]'s salt 17. *)
let interlude_scramble mem ~seed ~inv =
  let salt = seed + ((inv + 1) * 1_000_003) in
  for addr = 0 to Backing.size mem - 1 do
    Backing.write8 mem ~addr (Tracegen.hash_mix salt addr 23)
  done

(* Sequential reference replay: expected value of every dynamic load,
   keyed by (invocation, instruction, iteration). *)
let reference_loads (sch : Schedule.t) trace ~trips ~invocations ~seed =
  let size = Tracegen.memory_size sch.loop in
  let ref_mem = Backing.create ~size in
  init_memory ref_mem ~seed;
  let expected = Hashtbl.create (trips * 4) in
  let accesses = Loop.memory_accesses sch.loop in
  for inv = 0 to invocations - 1 do
    for k = 0 to trips - 1 do
      List.iter
        (fun (ins : Instr.t) ->
          let addr = Tracegen.address trace ~instr:ins ~iteration:k in
          match ins.Instr.opcode with
          | Opcode.Load w ->
            let width = Opcode.bytes_of_width w in
            Hashtbl.replace expected (inv, ins.Instr.id, k)
              (Backing.read ref_mem ~addr ~width)
          | Opcode.Store w ->
            Backing.write ref_mem ~addr ~width:(Opcode.bytes_of_width w)
              (store_value ins.Instr.id k)
          | _ -> ())
        accesses
    done;
    if inv < invocations - 1 then interlude_scramble ref_mem ~seed ~inv
  done;
  expected

let default_trips (loop : Loop.t) = min loop.Loop.trip_count 2048

type watchdog = { wd_loop : string; wd_elapsed : int; wd_limit : int }

exception Watchdog_timeout of watchdog

let watchdog_message { wd_loop; wd_elapsed; wd_limit } =
  Printf.sprintf "%s ran for %d cycles, past the %d-cycle watchdog limit"
    wd_loop wd_elapsed wd_limit

let () =
  Printexc.register_printer (function
    | Watchdog_timeout wd -> Some ("Exec.Watchdog_timeout: " ^ watchdog_message wd)
    | _ -> None)

(* A healthy run costs [compute + stall] cycles with stall bounded by a
   small multiple of compute; 1000x compute plus a fixed grace covers
   every legitimate configuration with orders of magnitude to spare. *)
let default_max_cycles ~invocation_span ~invocations =
  (1000 * ((invocation_span * invocations) + 1)) + 1_000_000

(* Everything a tick needs, built deterministically from the run's
   arguments by {!setup}. Splitting it from the mutable {!Snapshot.cursor}
   is what makes checkpointing cheap: the runtime is rebuilt on resume
   from the same arguments, only the cursor and the hierarchy's flat
   state travel in the snapshot. *)
type runtime = {
  rt_cfg : Flexl0_arch.Config.t;
  rt_sch : Schedule.t;
  rt_trips : int;
  rt_invocations : int;
  rt_seed : int;
  rt_verify : bool;
  rt_backing : Backing.t;
  rt_hier : Hierarchy.t;
  rt_expected : (int * int * int, int64) Hashtbl.t;
  rt_by_slot : event list array;
  rt_horizon : int;
  rt_invocation_span : int;
  rt_limit : int;
  rt_on_event : trace_event -> unit;
  rt_trace : Tracegen.t;
  rt_key : string;
  rt_params : string;
}

let setup (cfg : Flexl0_arch.Config.t) (sch : Schedule.t) ~hierarchy ~trips
    ~invocations ~seed ~verify ~max_cycles ~faults ~sanitizer ~on_event =
  let trips = match trips with Some t -> t | None -> default_trips sch.loop in
  let trace = Tracegen.create sch.loop ~seed in
  let size = Tracegen.memory_size sch.loop in
  let backing = Backing.create ~size in
  init_memory backing ~seed;
  let hier = hierarchy ~backing in
  let hier =
    match faults with Some plan -> Fault.instrument plan hier | None -> hier
  in
  (* Sanitizer outermost: it must observe fault-perturbed behaviour. *)
  let hier = Flexl0_mem.Sanitizer.wrap sanitizer hier in
  let expected =
    if verify then reference_loads sch trace ~trips ~invocations ~seed
    else Hashtbl.create 1
  in
  let events = events_of sch in
  let by_slot = Array.make sch.ii [] in
  List.iter
    (fun e -> by_slot.(e.ev_start mod sch.ii) <- e :: by_slot.(e.ev_start mod sch.ii))
    events;
  Array.iteri (fun i l -> by_slot.(i) <- List.rev l) by_slot;
  let max_start = List.fold_left (fun acc e -> max acc e.ev_start) 0 events in
  let horizon = ((trips - 1) * sch.ii) + max_start in
  let invocation_span = Schedule.compute_cycles sch ~trips in
  let limit =
    match max_cycles with
    | Some m -> m
    | None -> default_max_cycles ~invocation_span ~invocations
  in
  let key = sch.loop.Loop.name in
  (* Digest of every argument that shapes replay. A snapshot taken under
     one configuration must never restore into another — the cursor
     would point into a different event stream and the divergence would
     be silent. The schedule itself may hold closures, so the digest is
     over its observable shape, not a [Marshal] of it. *)
  let params =
    let fault_part =
      match faults with
      | None -> "none"
      | Some (p : Fault.plan) ->
        string_of_int p.seed ^ ":"
        ^ String.concat "," (List.map Fault.fault_to_string p.faults)
    in
    Digest.to_hex
      (Digest.string
         (String.concat "|"
            [ key; string_of_int sch.ii; string_of_int trips;
              string_of_int invocations; string_of_int seed;
              string_of_bool verify; hier.Hierarchy.name;
              string_of_int (List.length events); string_of_int horizon;
              string_of_int invocation_span; string_of_int limit;
              Flexl0_mem.Sanitizer.mode_to_string sanitizer; fault_part ]))
  in
  { rt_cfg = cfg; rt_sch = sch; rt_trips = trips;
    rt_invocations = invocations; rt_seed = seed; rt_verify = verify;
    rt_backing = backing; rt_hier = hier; rt_expected = expected;
    rt_by_slot = by_slot; rt_horizon = horizon;
    rt_invocation_span = invocation_span; rt_limit = limit;
    rt_on_event = on_event; rt_trace = trace; rt_key = key;
    rt_params = params }

let fire rt (cur : Snapshot.cursor) ~inv now (ev : event) k =
  let hier = rt.rt_hier in
  match ev.kind with
  | Ev_access (ins, p) -> (
    let addr = Tracegen.address rt.rt_trace ~instr:ins ~iteration:k in
    match ins.Instr.opcode with
    | Opcode.Load w ->
      cur.Snapshot.loads <- cur.Snapshot.loads + 1;
      let width = Opcode.bytes_of_width w in
      let outcome =
        hier.Hierarchy.load ~now ~cluster:ev.ev_cluster ~addr ~width
          ~hints:p.Schedule.hints
      in
      if rt.rt_verify then begin
        match Hashtbl.find_opt rt.rt_expected (inv, ins.Instr.id, k) with
        | Some v when v <> outcome.Hierarchy.value ->
          cur.Snapshot.mismatches <- cur.Snapshot.mismatches + 1
        | Some _ -> ()
        | None -> cur.Snapshot.mismatches <- cur.Snapshot.mismatches + 1
      end;
      let deadline = now + p.Schedule.assumed_latency in
      let stall = max 0 (outcome.Hierarchy.ready_at - deadline) in
      rt.rt_on_event
        { ev_time = now; ev_iteration = k; ev_instr = ins.Instr.id;
          ev_kind = `Load; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
          ev_served = Some outcome.Hierarchy.served; ev_stall = stall };
      stall
    | Opcode.Store w ->
      cur.Snapshot.stores <- cur.Snapshot.stores + 1;
      let width = Opcode.bytes_of_width w in
      let outcome =
        hier.Hierarchy.store ~now ~cluster:ev.ev_cluster ~addr ~width
          ~value:(store_value ins.Instr.id k) ~hints:p.Schedule.hints
      in
      let deadline = now + p.Schedule.assumed_latency in
      let stall = max 0 (outcome.Hierarchy.ready_at - deadline) in
      rt.rt_on_event
        { ev_time = now; ev_iteration = k; ev_instr = ins.Instr.id;
          ev_kind = `Store; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
          ev_served = Some outcome.Hierarchy.served; ev_stall = stall };
      stall
    | _ -> 0)
  | Ev_prefetch (ins, pf) ->
    (* Runs [lead_iterations] ahead of the load it covers. *)
    let future = k + pf.lead_iterations in
    let addr = Tracegen.address rt.rt_trace ~instr:ins ~iteration:future in
    let width =
      match Opcode.width ins.Instr.opcode with
      | Some w -> Opcode.bytes_of_width w
      | None -> 4
    in
    hier.Hierarchy.prefetch ~now ~cluster:ev.ev_cluster ~addr ~width;
    rt.rt_on_event
      { ev_time = now; ev_iteration = k; ev_instr = pf.for_instr;
        ev_kind = `Prefetch; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
        ev_served = None; ev_stall = 0 };
    0
  | Ev_replica (ins, _r) -> (
    let addr = Tracegen.address rt.rt_trace ~instr:ins ~iteration:k in
    match Opcode.width ins.Instr.opcode with
    | Some w ->
      let width = Opcode.bytes_of_width w in
      let outcome =
        hier.Hierarchy.store ~now ~cluster:ev.ev_cluster ~addr ~width
          ~value:0L
          ~hints:(Hint.make ~access:Hint.Inval_only ())
      in
      ignore outcome;
      rt.rt_on_event
        { ev_time = now; ev_iteration = k; ev_instr = ins.Instr.id;
          ev_kind = `Replica; ev_cluster_id = ev.ev_cluster; ev_addr = addr;
          ev_served = None; ev_stall = 0 };
      0
    | None -> 0)

(* One tick = one (invocation, t) position. The end-of-invocation work —
   flushing every L0 buffer (inter-loop coherence, Section 4.1) and the
   inter-invocation memory scramble — is folded into the tick at
   [t = horizon], so *every* tick boundary is a clean resume point: the
   cursor plus the hierarchy's flat state fully determine the rest of
   the run. *)
let exec_tick rt (cur : Snapshot.cursor) =
  let sch = rt.rt_sch in
  let inv = cur.Snapshot.cur_inv and t = cur.Snapshot.cur_t in
  let offset = inv * rt.rt_invocation_span in
  let slot = t mod sch.ii in
  let cycle_stall = ref 0 in
  List.iter
    (fun ev ->
      if t >= ev.ev_start then begin
        let k = (t - ev.ev_start) / sch.ii in
        if k < rt.rt_trips then begin
          let now = offset + t + cur.Snapshot.cum_stall in
          let stall = fire rt cur ~inv now ev k in
          if stall > !cycle_stall then cycle_stall := stall
        end
      end)
    rt.rt_by_slot.(slot);
  cur.Snapshot.cum_stall <- cur.Snapshot.cum_stall + !cycle_stall;
  let elapsed = offset + t + cur.Snapshot.cum_stall in
  if elapsed > rt.rt_limit then
    raise
      (Watchdog_timeout
         { wd_loop = sch.loop.Loop.name; wd_elapsed = elapsed;
           wd_limit = rt.rt_limit });
  if t = rt.rt_horizon then begin
    for c = 0 to rt.rt_cfg.num_clusters - 1 do
      rt.rt_hier.Hierarchy.invalidate ~cluster:c
    done;
    if inv < rt.rt_invocations - 1 then
      interlude_scramble rt.rt_backing ~seed:rt.rt_seed ~inv;
    cur.Snapshot.cur_inv <- inv + 1;
    cur.Snapshot.cur_t <- 0
  end
  else cur.Snapshot.cur_t <- t + 1;
  cur.Snapshot.ticks <- cur.Snapshot.ticks + 1

let finished rt (cur : Snapshot.cursor) =
  cur.Snapshot.cur_inv >= rt.rt_invocations

let drive rt (cur : Snapshot.cursor) ~checkpoint =
  (match checkpoint with
  | Some (interval, _) when interval <= 0 ->
    invalid_arg "Exec: checkpoint interval must be positive"
  | _ -> ());
  while not (finished rt cur) do
    exec_tick rt cur;
    match checkpoint with
    | Some (interval, sink)
      when cur.Snapshot.ticks mod interval = 0 && not (finished rt cur) ->
      sink (Snapshot.encode ~key:rt.rt_key ~params:rt.rt_params cur rt.rt_hier)
    | _ -> ()
  done;
  let compute_cycles = rt.rt_invocation_span * rt.rt_invocations in
  {
    trips = rt.rt_trips;
    compute_cycles;
    stall_cycles = cur.Snapshot.cum_stall;
    total_cycles = compute_cycles + cur.Snapshot.cum_stall;
    loads = cur.Snapshot.loads;
    stores = cur.Snapshot.stores;
    value_mismatches = cur.Snapshot.mismatches;
    counters = Stats.Counters.to_list rt.rt_hier.Hierarchy.counters;
    counter_set = rt.rt_hier.Hierarchy.counters;
  }

let run (cfg : Flexl0_arch.Config.t) (sch : Schedule.t) ~hierarchy ?trips
    ?(invocations = 1) ?(seed = 42) ?(verify = true) ?max_cycles ?faults
    ?(sanitizer = Flexl0_mem.Sanitizer.Off)
    ?(on_event = fun (_ : trace_event) -> ()) ?checkpoint () =
  let rt =
    setup cfg sch ~hierarchy ~trips ~invocations ~seed ~verify ~max_cycles
      ~faults ~sanitizer ~on_event
  in
  drive rt (Snapshot.fresh_cursor ()) ~checkpoint

let resume_from payload (cfg : Flexl0_arch.Config.t) (sch : Schedule.t)
    ~hierarchy ?trips ?(invocations = 1) ?(seed = 42) ?(verify = true)
    ?max_cycles ?faults ?(sanitizer = Flexl0_mem.Sanitizer.Off)
    ?(on_event = fun (_ : trace_event) -> ()) ?checkpoint () =
  let rt =
    setup cfg sch ~hierarchy ~trips ~invocations ~seed ~verify ~max_cycles
      ~faults ~sanitizer ~on_event
  in
  match Snapshot.restore payload ~key:rt.rt_key ~params:rt.rt_params rt.rt_hier with
  | Error _ as e -> e
  | Ok cur -> Ok (drive rt cur ~checkpoint)

let run_result cfg sch ~hierarchy ?trips ?invocations ?seed ?verify ?max_cycles
    ?faults ?sanitizer ?on_event ?checkpoint () =
  match
    run cfg sch ~hierarchy ?trips ?invocations ?seed ?verify ?max_cycles
      ?faults ?sanitizer ?on_event ?checkpoint ()
  with
  | r -> Ok r
  | exception Watchdog_timeout wd -> Error wd

let stall_fraction r =
  if r.total_cycles = 0 then 0.0
  else float_of_int r.stall_cycles /. float_of_int r.total_cycles

let l0_hit_rate r =
  let get name = Option.value ~default:0 (Stats.Counters.find r.counter_set name) in
  let hits = get "l0_load_hits" and misses = get "l0_load_misses" in
  if hits + misses = 0 then None
  else Some (float_of_int hits /. float_of_int (hits + misses))
