module Hierarchy = Flexl0_mem.Hierarchy
module Hint = Flexl0_mem.Hint
module Rng = Flexl0_util.Rng
module Counters = Flexl0_util.Stats.Counters

type component = L0 | L1 | Bus

type kind =
  | Drop_prefetch
  | Spurious_l0_evict
  | Corrupt_subblock
  | Skip_invalidate
  | Skip_psr_replica
  | Extra_latency of { component : component; cycles : int }
  | Corrupt_hint

type fault = { kind : kind; prob : float }
type plan = { seed : int; faults : fault list }

let is_coherence_breaking = function
  | Corrupt_subblock | Skip_invalidate | Skip_psr_replica | Corrupt_hint ->
    true
  | Drop_prefetch | Spurious_l0_evict | Extra_latency _ -> false

let is_timing_only k = not (is_coherence_breaking k)

let validate { seed = _; faults } =
  let rec go = function
    | [] -> Ok ()
    | { kind; prob } :: rest ->
      if not (prob >= 0.0 && prob <= 1.0) then
        Error
          (Printf.sprintf "fault probability must be in [0, 1], got %g" prob)
      else begin
        match kind with
        | Extra_latency { cycles; _ } when cycles < 0 ->
          Error
            (Printf.sprintf "extra-latency cycles must be >= 0, got %d" cycles)
        | _ -> go rest
      end
  in
  go faults

let component_to_string = function L0 -> "l0" | L1 -> "l1" | Bus -> "bus"

let component_of_string = function
  | "l0" -> Ok L0
  | "l1" -> Ok L1
  | "bus" -> Ok Bus
  | s -> Error (Printf.sprintf "unknown component %S (want l0|l1|bus)" s)

(* %.12g keeps round-tripping exact for every probability a CLI user can
   plausibly type while avoiding "0.10000000000000001" noise. *)
let prob_suffix prob = if prob = 1.0 then "" else Printf.sprintf ":%.12g" prob

let fault_to_string { kind; prob } =
  match kind with
  | Drop_prefetch -> "drop-prefetch" ^ prob_suffix prob
  | Spurious_l0_evict -> "spurious-l0-evict" ^ prob_suffix prob
  | Corrupt_subblock -> "corrupt-subblock" ^ prob_suffix prob
  | Skip_invalidate -> "skip-invalidate" ^ prob_suffix prob
  | Skip_psr_replica -> "skip-psr-replica" ^ prob_suffix prob
  | Corrupt_hint -> "corrupt-hint" ^ prob_suffix prob
  | Extra_latency { component; cycles } ->
    Printf.sprintf "extra-latency:%s:%d%s"
      (component_to_string component)
      cycles (prob_suffix prob)

let prob_of_string s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | _ -> Error (Printf.sprintf "bad probability %S (want a float in [0, 1])" s)

let fault_of_string spec =
  let ( let* ) = Result.bind in
  let simple kind = function
    | [] -> Ok { kind; prob = 1.0 }
    | [ p ] ->
      let* prob = prob_of_string p in
      Ok { kind; prob }
    | _ -> Error (Printf.sprintf "too many fields in fault spec %S" spec)
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim spec)) with
  | "drop-prefetch" :: rest -> simple Drop_prefetch rest
  | "spurious-l0-evict" :: rest -> simple Spurious_l0_evict rest
  | "corrupt-subblock" :: rest -> simple Corrupt_subblock rest
  | "skip-invalidate" :: rest -> simple Skip_invalidate rest
  | "skip-psr-replica" :: rest -> simple Skip_psr_replica rest
  | "corrupt-hint" :: rest -> simple Corrupt_hint rest
  | "extra-latency" :: comp :: cycles :: rest ->
    let* component = component_of_string comp in
    let* cycles =
      match int_of_string_opt cycles with
      | Some c when c >= 0 -> Ok c
      | _ -> Error (Printf.sprintf "bad cycle count %S in %S" cycles spec)
    in
    simple (Extra_latency { component; cycles }) rest
  | "extra-latency" :: _ ->
    Error
      (Printf.sprintf "extra-latency needs component and cycles, got %S" spec)
  | _ -> Error (Printf.sprintf "unknown fault spec %S" spec)

let plan_of_strings ~seed specs =
  let rec go acc = function
    | [] -> Ok { seed; faults = List.rev acc }
    | s :: rest -> (
      match fault_of_string s with
      | Ok f -> go (f :: acc) rest
      | Error _ as e -> e)
  in
  match go [] specs with
  | Error _ as e -> e
  | Ok plan -> (
    match validate plan with Ok () -> Ok plan | Error _ as e -> e)

(* One decision stream for the whole run. Fault decisions are a pure
   function of (seed, sequence of hierarchy calls): the executor issues
   the same call sequence no matter how timing shifts, a draw happens
   for every matching fault whether or not it fires, and no decision
   reads [now] — so a given seed yields the same injection pattern even
   when other faults stretch the clock. *)
let instrument plan (inner : Hierarchy.t) =
  let rng = Rng.create plan.seed in
  let fires { prob; _ } = Rng.float rng 1.0 < prob in
  (* Does any fault matching [pred] fire here? Every matching fault is
     drawn (no short-circuit) to keep the stream aligned. *)
  let firing pred =
    List.fold_left
      (fun acc f -> if pred f.kind then fires f || acc else acc)
      false plan.faults
  in
  let counters = inner.Hierarchy.counters in
  let count name = Counters.incr counters name in
  let delayed served ready_at =
    List.fold_left
      (fun ready_at f ->
        match f.kind with
        | Extra_latency { component; cycles } ->
          let applies =
            match (component, served) with
            | Bus, _ -> true
            | L0, (Hierarchy.L0 | Hierarchy.Attraction) -> true
            | ( L1,
                ( Hierarchy.L1 | Hierarchy.L2 | Hierarchy.Local_bank
                | Hierarchy.Remote_bank ) ) ->
              true
            | _ -> false
          in
          if fires f && applies then begin
            Counters.add counters "fault_extra_latency_cycles" cycles;
            ready_at + cycles
          end
          else ready_at
        | _ -> ready_at)
      ready_at plan.faults
  in
  let spurious_evict ~cluster =
    if firing (function Spurious_l0_evict -> true | _ -> false) then begin
      count "fault_spurious_evicts";
      inner.Hierarchy.invalidate ~cluster
    end
  in
  let load ~now ~cluster ~addr ~width ~hints =
    let outcome = inner.Hierarchy.load ~now ~cluster ~addr ~width ~hints in
    let corrupt = firing (function Corrupt_subblock -> true | _ -> false) in
    let outcome =
      if corrupt && outcome.Hierarchy.served = Hierarchy.L0 then begin
        count "fault_corrupted_subblocks";
        { outcome with
          Hierarchy.value = Int64.logxor outcome.Hierarchy.value 0xFFL }
      end
      else outcome
    in
    let outcome =
      { outcome with
        Hierarchy.ready_at =
          delayed outcome.Hierarchy.served outcome.Hierarchy.ready_at }
    in
    spurious_evict ~cluster;
    outcome
  in
  let store ~now ~cluster ~addr ~width ~value ~hints =
    let skip_replica =
      hints.Hint.access = Hint.Inval_only
      && firing (function Skip_psr_replica -> true | _ -> false)
    in
    let corrupt_hint =
      hints.Hint.access = Hint.Par_access
      && firing (function Corrupt_hint -> true | _ -> false)
    in
    if skip_replica then begin
      count "fault_skipped_replicas";
      (* The replica never reaches the hierarchy; its inner counters and
         invalidations simply don't happen. *)
      let outcome = { Hierarchy.ready_at = now; value = 0L; served = Hierarchy.L1 } in
      let outcome =
        { outcome with
          Hierarchy.ready_at =
            delayed outcome.Hierarchy.served outcome.Hierarchy.ready_at }
      in
      spurious_evict ~cluster;
      outcome
    end
    else begin
      let hints =
        if corrupt_hint then begin
          count "fault_corrupted_hints";
          { hints with Hint.access = Hint.No_access }
        end
        else hints
      in
      let outcome =
        inner.Hierarchy.store ~now ~cluster ~addr ~width ~value ~hints
      in
      let outcome =
        { outcome with
          Hierarchy.ready_at =
            delayed outcome.Hierarchy.served outcome.Hierarchy.ready_at }
      in
      spurious_evict ~cluster;
      outcome
    end
  in
  let prefetch ~now ~cluster ~addr ~width =
    if firing (function Drop_prefetch -> true | _ -> false) then
      count "fault_dropped_prefetches"
    else inner.Hierarchy.prefetch ~now ~cluster ~addr ~width
  in
  let invalidate ~cluster =
    if firing (function Skip_invalidate -> true | _ -> false) then
      count "fault_skipped_invalidates"
    else inner.Hierarchy.invalidate ~cluster
  in
  {
    inner with
    Hierarchy.name = inner.Hierarchy.name ^ "+faults";
    load;
    store;
    prefetch;
    invalidate;
    (* The decision stream is part of the dynamic state: a resumed run
       must draw exactly where the interrupted one left off, or the
       injection pattern (and thus timing and counters) would diverge. *)
    snap =
      (fun w ->
        inner.Hierarchy.snap w;
        Flexl0_util.Flatio.W.tag w "FLT0";
        Flexl0_util.Flatio.W.i64 w (Rng.state rng));
    restore =
      (fun r ->
        inner.Hierarchy.restore r;
        Flexl0_util.Flatio.R.tag r "FLT0";
        Rng.set_state rng (Flexl0_util.Flatio.R.i64 r));
  }
