(** Mid-run execution snapshots.

    A snapshot is the complete dynamic state of a simulation at a tick
    boundary: the executor's {!cursor} (loop position and accumulated
    totals) plus the wrapped hierarchy's flat state, written through
    {!Flexl0_util.Flatio} into one contiguous payload. Everything else a
    run needs — the schedule, the trace generator, the event tables, the
    reference-load table — is a pure function of the run's arguments and
    is rebuilt deterministically on resume, so the payload stays small
    and version drift is caught by the [key]/[params] guard rather than
    by unmarshalling garbage.

    Restoring [capture]d state and continuing is byte-identical to never
    having stopped: same result record, same counters, same CSV bytes.
    The executor owns that contract ({!Exec.run}'s [checkpoint] /
    {!Exec.resume_from}); this module owns the codec and the on-disk
    framing. *)

(** The executor's position and running totals. Mutable on purpose: the
    executor advances one cursor in place; capture copies it out. *)
type cursor = {
  mutable cur_inv : int;  (** current invocation, [0 .. invocations-1] *)
  mutable cur_t : int;  (** current tick within the invocation *)
  mutable cum_stall : int;
  mutable loads : int;
  mutable stores : int;
  mutable mismatches : int;
  mutable ticks : int;  (** total ticks executed — drives checkpoint cadence *)
}

val fresh_cursor : unit -> cursor
val copy_cursor : cursor -> cursor

val version : int
(** Bumped whenever the payload layout changes; a mismatch is a typed
    {!error}, never a misparse. *)

type meta = {
  m_version : int;
  m_key : string;  (** the loop name the snapshot belongs to *)
  m_params : string;  (** digest of every run parameter that shapes replay *)
  m_ticks : int;
}

type error =
  | Damaged of string  (** structurally unreadable ({!Flexl0_util.Flatio.Corrupt}) *)
  | Mismatch of { field : string; snapshot : string; live : string }
      (** readable but belongs to a different run configuration *)

val error_message : error -> string

val encode : key:string -> params:string -> cursor -> Flexl0_mem.Hierarchy.t -> string
(** Flat payload: header guard, cursor, then [hier.snap]. Hand the
    result to {!Flexl0_util.Frame.encode} (or {!append_file}) for
    on-disk/on-wire integrity. *)

val decode_meta : string -> (meta, error) result
(** Reads only the header — cheap routing/validation without touching
    any live state. *)

val restore :
  string ->
  key:string ->
  params:string ->
  Flexl0_mem.Hierarchy.t ->
  (cursor, error) result
(** Validates the header against the live run, then restores the
    hierarchy {e in place} and returns the saved cursor. The guard runs
    before any mutation, but a [Damaged] payload can fail mid-restore —
    on [Error] the caller must treat the live state as unusable and
    rebuild from scratch (which is exactly what a fresh run does). *)

(** {1 Checkpoint files}

    One file, {!Flexl0_util.Frame}-encoded snapshots appended in order.
    A crash mid-append leaves a torn tail; replay takes the last intact
    frame. *)

val append_file : string -> string -> unit
(** [append_file path payload] appends one frame and flushes. *)

val file_sink : string -> string -> unit
(** [file_sink path] partially applied is a checkpoint sink for
    {!Exec.run}. *)

val read_last_file : string -> string option
(** Last intact frame payload, scanning with
    {!Flexl0_util.Journal.Resync} so a mid-file corruption falls back to
    the most recent frame that still digests. [None] when the file is
    missing or holds no intact frame. *)
